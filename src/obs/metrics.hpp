/// \file metrics.hpp
/// The unified metrics registry: named counters, gauges and
/// fixed-bucket histograms every layer publishes into, so the numbers
/// a run reports and the numbers an operator scrapes can never
/// disagree (docs/OBSERVABILITY.md).
///
/// Cost model, enforced twice:
///  - Compile time: building with -DBDSM_OBS=0 compiles the
///    BDSM_OBS_* macros to nothing — zero instructions on every hot
///    path, provably (the symbols are not referenced).
///  - Run time: even when compiled in, observability is off until
///    obs::SetEnabled(true) (the --metrics-json / --trace-out flags).
///    A disabled site costs one relaxed atomic load.
/// An enabled counter increment is one relaxed fetch_add into a
/// per-thread-striped, cache-line-padded cell; cells are summed only
/// on Snapshot().
///
/// Naming discipline (docs/OBSERVABILITY.md): metric names are
/// `<layer>.<component>.<what>` with unit suffixes; `*_us` metrics
/// are measured time (host wall or thread CPU) and are NEVER
/// run-deterministic, everything else (bare counts, `*_ticks`) is
/// deterministic in (spec, scenario, seed) and may be gated exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// Compile-time switch; the build defines it (CMake option BDSM_OBS),
/// standalone inclusion defaults to compiled-in.
#ifndef BDSM_OBS
#define BDSM_OBS 1
#endif

namespace bdsm::obs {

struct RunProvenance;  // provenance.hpp

namespace detail {
/// The process-wide runtime switch behind Enabled().
extern std::atomic<bool> g_enabled;
/// This thread's stripe index in [0, kStripes) — sequentially assigned
/// on first use, so a fixed thread population maps to fixed cells.
size_t ThreadStripe();

/// One cache line per stripe: concurrent writers never false-share.
struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};
}  // namespace detail

/// Stripe count for counter/histogram cells (power of two).
inline constexpr size_t kStripes = 16;

/// True when observability is runtime-enabled.  One relaxed load —
/// every publishing site checks this before touching the registry.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime switch (drivers: --metrics-json / --trace-out).
void SetEnabled(bool on);

/// Monotonic counter.  Hot path: one relaxed fetch_add into this
/// thread's stripe.  Handles returned by the registry stay valid for
/// the process lifetime (Reset zeroes values, never deallocates).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    cells_[detail::ThreadStripe()].v.fetch_add(n,
                                               std::memory_order_relaxed);
  }
  /// Records a duration in whole microseconds (`*_us` naming rule:
  /// such counters are measured time and never gated exactly).
  void AddSecondsAsMicros(double seconds);

  /// Sum over stripes (snapshot path; racing writers may be missed by
  /// one in-flight increment, which snapshot-at-quiescence avoids).
  uint64_t Value() const;
  void Reset();

 private:
  detail::Cell cells_[kStripes];
};

/// Last-writer-wins instantaneous value (queue depths, targets).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds with an
/// implicit +inf overflow bucket; per-bucket counts are striped like
/// Counter cells.  `sum` accumulates in double (deterministic only
/// single-threaded — see docs/OBSERVABILITY.md).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double x);

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, ascending
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 buckets
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// counts_[bucket * kStripes + stripe].
  std::vector<detail::Cell> counts_;
  detail::Cell count_[kStripes];
  std::atomic<double> sum_[kStripes];
};

/// Default histogram bounds for `*_us` latencies: decades from 1µs to
/// 10s.
const std::vector<double>& DefaultLatencyBoundsUs();

/// Everything the registry held at one instant, names sorted — the
/// deterministic export/diff unit.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  struct Hist {
    std::string name;
    Histogram::Snapshot data;
  };
  std::vector<Hist> histograms;

  /// Counter value by name; 0 when absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Gauge value by name; 0 when absent.
  int64_t GaugeValue(const std::string& name) const;

  /// `bdsm-metrics-v1` JSON document; `prov` (optional) becomes the
  /// run-provenance header.
  std::string ToJson(const RunProvenance* prov) const;
};

/// Process-wide named-metric registry.  Registration (first Get* for a
/// name) takes a mutex; subsequent hits on a cached handle are
/// lock-free.  Metrics live for the process: Reset() zeroes values but
/// never invalidates handles, so `static Counter&` caches at call
/// sites stay correct across test-suite resets.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` applies on first registration only (ignored after).
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBoundsUs());

  MetricsSnapshot Snapshot() const;
  /// Zeroes every value; handles stay valid (tests isolate runs with
  /// this).
  void Reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  // Ordered maps: Snapshot() is sorted by construction.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bdsm::obs

// Publishing macros for static-named hot-path sites: compile away
// entirely under BDSM_OBS=0, cost one relaxed load when runtime-
// disabled, and cache the registry handle in a function-local static
// when enabled.  Dynamic names (per-tenant) call the registry directly
// under an Enabled() guard instead.
#if BDSM_OBS
#define BDSM_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    if (::bdsm::obs::Enabled()) {                                       \
      static ::bdsm::obs::Counter& bdsm_obs_counter_ =                  \
          ::bdsm::obs::MetricsRegistry::Instance().GetCounter(name);    \
      bdsm_obs_counter_.Add(n);                                         \
    }                                                                   \
  } while (0)
#define BDSM_OBS_COUNT_US(name, seconds)                                \
  do {                                                                  \
    if (::bdsm::obs::Enabled()) {                                       \
      static ::bdsm::obs::Counter& bdsm_obs_counter_ =                  \
          ::bdsm::obs::MetricsRegistry::Instance().GetCounter(name);    \
      bdsm_obs_counter_.AddSecondsAsMicros(seconds);                    \
    }                                                                   \
  } while (0)
#define BDSM_OBS_GAUGE_SET(name, value)                                 \
  do {                                                                  \
    if (::bdsm::obs::Enabled()) {                                       \
      static ::bdsm::obs::Gauge& bdsm_obs_gauge_ =                      \
          ::bdsm::obs::MetricsRegistry::Instance().GetGauge(name);      \
      bdsm_obs_gauge_.Set(static_cast<int64_t>(value));                 \
    }                                                                   \
  } while (0)
#define BDSM_OBS_HISTOGRAM_US(name, seconds)                            \
  do {                                                                  \
    if (::bdsm::obs::Enabled()) {                                       \
      static ::bdsm::obs::Histogram& bdsm_obs_hist_ =                   \
          ::bdsm::obs::MetricsRegistry::Instance().GetHistogram(name);  \
      bdsm_obs_hist_.Observe((seconds)*1e6);                            \
    }                                                                   \
  } while (0)
#else
#define BDSM_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define BDSM_OBS_COUNT_US(name, seconds) \
  do {                                   \
  } while (0)
#define BDSM_OBS_GAUGE_SET(name, value) \
  do {                                  \
  } while (0)
#define BDSM_OBS_HISTOGRAM_US(name, seconds) \
  do {                                       \
  } while (0)
#endif
