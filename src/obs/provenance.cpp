#include "obs/provenance.hpp"

#include <cstdio>

#include "obs/metrics.hpp"  // BDSM_OBS

namespace bdsm::obs {

const char* GitDescribe() {
#ifdef BDSM_GIT_DESCRIBE
  return BDSM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string ProvenanceJson(const RunProvenance& prov) {
  std::string out = "{";
  out += "\"tool\": \"" + JsonEscape(prov.tool) + "\", ";
  out += "\"scenario\": \"" + JsonEscape(prov.scenario) + "\", ";
  out += "\"engine\": \"" + JsonEscape(prov.engine) + "\", ";
  out += "\"seed\": " + std::to_string(prov.seed) + ", ";
  out += "\"git\": \"" + JsonEscape(prov.git) + "\", ";
  out += std::string("\"obs_compiled\": ") +
         (prov.obs_compiled ? "true" : "false");
  out += "}";
  return out;
}

}  // namespace bdsm::obs
