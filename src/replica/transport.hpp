/// \file transport.hpp
/// The modeled WAL-shipping link: deterministic per-batch link costs
/// on the replica layer's critical-path clock.
///
/// Same discipline as gpusim's DeviceConfig and the sharded layer's
/// critical path (docs/BENCHMARKS.md): this host cannot show real
/// network parallelism, so shipping cost is *modeled*, never measured
/// — one-way link latency plus bytes over bandwidth, where a batch's
/// bytes are exactly its WAL trace-format record size (8-byte count
/// header + 13 bytes per op, workload/trace.hpp).  The model is a
/// pure function of (options, batch sizes), so lag accounting and the
/// failover duration are deterministic in (spec, scenario, seed) and
/// CI can gate them exactly.
#pragma once

#include <cstdint>

#include "core/replication.hpp"
#include "graph/update_stream.hpp"

namespace bdsm::replica {

class TransportModel {
 public:
  explicit TransportModel(const ReplicaOptions& options);

  /// Wire bytes of one shipped batch: the WAL's trace-format record
  /// (count header + fixed-width ops) — the log ships nothing else.
  static uint64_t BatchWireBytes(const UpdateBatch& batch);
  static uint64_t WireBytes(size_t num_ops);

  /// Modeled seconds to ship `bytes` to one follower: one-way latency
  /// + bytes / bandwidth.
  double ShipSeconds(uint64_t bytes) const;

  double link_latency_seconds() const { return link_latency_seconds_; }
  double election_timeout_seconds() const {
    return election_timeout_seconds_;
  }

 private:
  double link_latency_seconds_;
  double bytes_per_second_;
  double election_timeout_seconds_;
};

}  // namespace bdsm::replica
