#include "replica/group.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>

#include "obs/metrics.hpp"
#include "persist/snapshot.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

namespace bdsm::replica {

namespace fs = std::filesystem;

namespace {

/// A fresh shipping directory under the system temp dir.  Pid +
/// process-wide counter: unique without clocks or randomness.
std::string AutoShippingDir() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  fs::path p = fs::temp_directory_path() /
               ("bdsm-replica-" + std::to_string(::getpid()) + "-" +
                std::to_string(n));
  return p.string();
}

}  // namespace

ReplicatedEngine::ReplicatedEngine(const EngineSpec& spec,
                                   const LabeledGraph& g,
                                   const EngineOptions& options)
    : options_(options), transport_(options.replica) {
  leader_ = EngineRegistry::Instance().Make(spec, g, options_);
  if (!leader_->Describe().supports_snapshot) {
    throw EngineSpecError(
        "replicated(...) needs an inner engine with snapshot support "
        "(Describe().supports_snapshot); \"" +
        leader_->Describe().canonical_spec + "\" has none");
  }
  dir_ = options_.replica.dir;
  if (dir_.empty()) {
    dir_ = AutoShippingDir();
    own_dir_ = true;
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw persist::PersistError("cannot create replica shipping dir " +
                                dir_ + ": " + ec.message());
  }
  persist::CheckpointPolicy policy;
  policy.every_batches = options_.replica.checkpoint_every;
  policy.prune = true;
  persist::WalOptions wal;
  wal.batches_per_segment = options_.replica.segment_batches;
  checkpointer_ = std::make_unique<persist::Checkpointer>(
      dir_, policy, wal, options_.gamma.device);

  const std::string inner = leader_->Describe().canonical_spec;
  size_t n = options_.replica.followers;
  if (n == 0) n = 1;  // a group without a follower cannot fail over
  followers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    followers_.push_back(std::make_unique<Follower>(
        static_cast<int>(i), inner, g, options_, &transport_, dir_));
  }
  max_lag_.assign(n, 0);
  StampCanonicalSpec("replicated(" + inner +
                     ", followers=" + std::to_string(n) + ")");
}

ReplicatedEngine::~ReplicatedEngine() {
  // Close the WAL before unlinking anything under it.
  checkpointer_.reset();
  followers_.clear();
  if (own_dir_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort; temp dir either way
  }
}

EngineInfo ReplicatedEngine::Describe() const {
  EngineInfo info = leader_->Describe();
  info.inner_spec = info.canonical_spec;
  info.canonical_spec = CanonicalSpecOrName();
  info.supports_replication = true;
  info.num_followers = followers_.size();
  // Tenant drive bypasses ProcessBatch (and therefore the tee);
  // replicating a tenant front door is unsupported by design.
  info.supports_tenancy = false;
  return info;
}

uint64_t ReplicatedEngine::LeaderNextBatch() const {
  return shipping_ ? checkpointer_->next_batch() : 0;
}

QueryId ReplicatedEngine::AddQuery(const QueryGraph& q) {
  GAMMA_CHECK_MSG(!leader_dead_, "AddQuery on a killed replica group");
  const QueryId id = leader_->AddQuery(q);
  for (auto& f : followers_) {
    const QueryId fid = f->AddQuery(q);
    GAMMA_CHECK_MSG(fid == id, "replica query ids diverged");
  }
  RecheckpointAfterMutation();
  return id;
}

bool ReplicatedEngine::RemoveQuery(QueryId id) {
  GAMMA_CHECK_MSG(!leader_dead_, "RemoveQuery on a killed replica group");
  const bool ok = leader_->RemoveQuery(id);
  for (auto& f : followers_) f->RemoveQuery(id);
  if (ok) RecheckpointAfterMutation();
  return ok;
}

std::vector<QueryId> ReplicatedEngine::QueryIds() const {
  return leader_->QueryIds();
}

std::vector<RegisteredQuery> ReplicatedEngine::RegisteredQueries() const {
  return leader_->RegisteredQueries();
}

bool ReplicatedEngine::RestoreQuery(const QueryGraph& q, QueryId id) {
  GAMMA_CHECK_MSG(!leader_dead_, "RestoreQuery on a killed replica group");
  if (!leader_->RestoreQuery(q, id)) return false;
  for (auto& f : followers_) {
    GAMMA_CHECK_MSG(f->RestoreQuery(q, id),
                    "replica RestoreQuery diverged");
  }
  RecheckpointAfterMutation();
  return true;
}

const LabeledGraph& ReplicatedEngine::host_graph() const {
  return leader_->host_graph();
}

void ReplicatedEngine::RunMatchPhase(const UpdateBatch& batch,
                                     bool positive,
                                     const BatchOptions& options,
                                     BatchReport* report) {
  GAMMA_CHECK_MSG(!leader_dead_,
                  "ProcessBatch on a killed replica group (run "
                  "Failover() first)");
  leader_->RunMatchPhase(batch, positive, options, report);
}

void ReplicatedEngine::RunUpdatePhase(const UpdateBatch& batch,
                                      const BatchOptions& options,
                                      BatchReport* report) {
  leader_->RunUpdatePhase(batch, options, report);
}

void ReplicatedEngine::EnsureShipping() {
  if (shipping_) return;
  // Lazy Begin: pre-stream query registrations land in the base
  // snapshot (scenario ad-hoc provenance; the manifest's engine_spec
  // is the inner engine's, so restore/resync rebuild bare inner
  // engines, never nested replica groups).
  checkpointer_->Begin(*leader_, /*seed=*/0, /*scenario=*/"");
  shipping_ = true;
}

void ReplicatedEngine::RecheckpointAfterMutation() {
  if (!shipping_) return;
  // The WAL records batches only; a mutated query set is durable (and
  // resync-consistent) from the next snapshot on, so cut one now
  // under a fresh generation.
  checkpointer_->Begin(*leader_, /*seed=*/0, /*scenario=*/"",
                       checkpointer_->next_batch(),
                       checkpointer_->totals());
}

void ReplicatedEngine::OnBatchDigested(const UpdateBatch& batch,
                                       const BatchReport& report) {
  EnsureShipping();
  checkpointer_->OnBatchApplied(*leader_, batch, report);
  leader_ops_ += batch.size();
  const uint64_t bytes = TransportModel::BatchWireBytes(batch);
  shipped_batches_ += followers_.size();
  shipped_bytes_ += bytes * followers_.size();
  BDSM_OBS_COUNT("replica.shipped_batches", followers_.size());
  BDSM_OBS_COUNT("replica.shipped_bytes", bytes * followers_.size());
  AdvanceFollowers(/*force=*/false);
}

void ReplicatedEngine::AdvanceFollowers(bool force) {
  const uint64_t leader_next = LeaderNextBatch();
  uint64_t max_lag_batches = 0;
  uint64_t max_lag_updates = 0;
  for (size_t i = 0; i < followers_.size(); ++i) {
    Follower& f = *followers_[i];
    uint64_t lag = leader_next - f.next_batch();
    const size_t slot = static_cast<size_t>(f.id());
    if (slot < max_lag_.size() && lag > max_lag_[slot]) {
      max_lag_[slot] = lag;
    }
    if (force || lag >= options_.replica.poll_every) f.CatchUp();
    lag = leader_next - f.next_batch();
    const uint64_t lag_updates = leader_ops_ - f.covered_ops();
    if (lag > max_lag_batches) max_lag_batches = lag;
    if (lag_updates > max_lag_updates) max_lag_updates = lag_updates;
  }
  BDSM_OBS_GAUGE_SET("replica.lag_batches", max_lag_batches);
  BDSM_OBS_GAUGE_SET("replica.lag_updates", max_lag_updates);
}

const Engine* ReplicatedEngine::FollowerEngine(size_t index) const {
  if (index >= followers_.size()) return nullptr;
  return followers_[index]->engine();
}

void ReplicatedEngine::DrainFollowers() {
  if (!shipping_) return;
  AdvanceFollowers(/*force=*/true);
}

void ReplicatedEngine::KillLeader() {
  if (leader_dead_) return;
  leader_dead_ = true;
  // The kill is the end of the leader process: its WAL closes (the
  // torn-write variant is exercised by tests/replica_test.cpp via
  // file surgery, exactly like the restart drill's).
  if (shipping_) checkpointer_->Finish();
  BDSM_OBS_COUNT("replica.leader_kills", 1);
}

bool ReplicatedEngine::Failover() {
  if (!leader_dead_ || !shipping_ || followers_.empty()) return false;
  Timer wall;

  // Election: the most caught-up follower wins (lowest id on ties —
  // deterministic).
  size_t elected = 0;
  for (size_t i = 1; i < followers_.size(); ++i) {
    if (followers_[i]->next_batch() > followers_[elected]->next_batch()) {
      elected = i;
    }
  }

  // The promoted leader restores from the durable chain: latest
  // checkpoint generation + WAL tail.  Everything the old leader
  // acknowledged was fsynced before the kill, so this loses nothing.
  persist::RestoredEngine restored =
      persist::RestoreEngine(dir_, options_, options_.gamma.device);

  // Zero-loss verification: the elected follower's live replica,
  // drained to the durable end of the log, must agree with the
  // restored leader on stream position and graph state bit for bit.
  Follower& winner = *followers_[elected];
  winner.CatchUp();
  GAMMA_CHECK_MSG(winner.next_batch() == restored.next_batch,
                  "failover divergence: elected follower and restored "
                  "leader disagree on the stream position");
  GAMMA_CHECK_MSG(winner.engine()->host_graph() ==
                      restored.engine->host_graph(),
                  "failover divergence: elected follower and restored "
                  "leader disagree on the graph replica");

  // Modeled duration on the critical-path clock: election timeout +
  // shipping the tail + replaying it (persist reports the tail's ops
  // and its latency under the restored engine's clock).
  last_failover_seconds_ =
      transport_.election_timeout_seconds() +
      transport_.ShipSeconds(TransportModel::WireBytes(
          static_cast<size_t>(restored.tail_ops))) +
      restored.tail_latency_seconds;
  last_failover_replayed_ = restored.wal_batches_replayed;
  ++failovers_;

  // Promote: the restored engine takes over, the winner leaves the
  // follower set, shipping resumes under a fresh generation at the
  // resume offset.  Remaining followers ride the generation switch
  // through WalReader's gap/resync protocol.
  leader_ = std::move(restored.engine);
  leader_dead_ = false;
  followers_.erase(followers_.begin() +
                   static_cast<std::ptrdiff_t>(elected));
  leader_ops_ = restored.totals.ops;
  checkpointer_->Begin(*leader_, /*seed=*/0, /*scenario=*/"",
                       restored.next_batch, restored.totals);

  BDSM_OBS_COUNT("replica.failovers", 1);
  BDSM_OBS_COUNT("replica.failover_replayed_batches",
                 last_failover_replayed_);
  BDSM_OBS_HISTOGRAM_US("replica.failover_us", wall.ElapsedSeconds());
  return true;
}

ReplicationStats ReplicatedEngine::Stats() const {
  ReplicationStats out;
  out.poll_every = std::max<uint64_t>(options_.replica.poll_every, 1);
  out.leader_batches = LeaderNextBatch();
  out.shipped_batches = shipped_batches_;
  out.shipped_bytes = shipped_bytes_;
  out.failovers = failovers_;
  out.last_failover_seconds = last_failover_seconds_;
  out.last_failover_replayed = last_failover_replayed_;
  const uint64_t leader_next = LeaderNextBatch();
  for (const auto& f : followers_) {
    ReplicaStats r;
    r.replica = f->id();
    r.applied_batches = f->applied_batches();
    r.applied_ops = f->applied_ops();
    r.lag_batches = leader_next - f->next_batch();
    r.lag_updates = leader_ops_ - f->covered_ops();
    const size_t slot = static_cast<size_t>(f->id());
    r.max_lag_batches = slot < max_lag_.size() ? max_lag_[slot] : 0;
    r.resyncs = f->resyncs();
    r.transport_seconds = f->transport_seconds();
    r.apply_seconds = f->apply_seconds();
    out.replicas.push_back(r);
  }
  return out;
}

void RegisterReplicaEngines(EngineRegistry* registry) {
  EngineDef def;
  def.example = "replicated(gamma, followers=2, poll_every=1)";
  def.min_children = 1;
  def.max_children = 1;
  def.option_keys = {
      {"followers", "follower replicas consuming the WAL tail",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n < 1 || n > 64) return false;
         o->replica.followers = n;
         return true;
       }},
      {"poll_every",
       "follower poll cadence in leader batches (the staleness bound)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n < 1 || n > 1024) return false;
         o->replica.poll_every = n;
         return true;
       }},
      {"checkpoint_every",
       "leader snapshot cadence in batches (0 = base snapshot only)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->replica.checkpoint_every = n;
         return true;
       }},
      {"segment", "WAL segment rotation (batches per segment)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->replica.segment_batches = n;
         return true;
       }},
      {"link_us", "modeled one-way link latency in microseconds",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->replica.link_latency_seconds = s * 1e-6;
         return true;
       }},
      {"link_gbps", "modeled link bandwidth in gigabits per second",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s <= 0.0) return false;
         o->replica.link_gbits_per_second = s;
         return true;
       }},
      {"election_us", "modeled election timeout in microseconds",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->replica.election_timeout_seconds = s * 1e-6;
         return true;
       }},
  };
  def.factory = [](const EngineSpec& spec, const LabeledGraph& g,
                   const EngineOptions& options) {
    return std::unique_ptr<Engine>(
        new ReplicatedEngine(spec.children.front(), g, options));
  };
  registry->Register("replicated", std::move(def));
}

}  // namespace bdsm::replica
