/// \file follower.hpp
/// One follower replica: an inner-engine clone that consumes the
/// leader's WAL tail through the shared incremental reader
/// (persist/wal_reader.hpp) and serves reads at a bounded staleness
/// lag.
///
/// A follower starts as a clone of the leader at stream position 0
/// (same inner spec over the same initial graph; query mutations are
/// mirrored by the group as they happen, so the registered sets track
/// each other by construction).  `CatchUp()` polls the WAL and
/// applies every newly durable batch through the inner engine's
/// ordinary `ProcessBatch` — the batches in the log are the leader's
/// *sanitized* batches, and a follower at the same stream position
/// holds the identical graph, so re-sanitization is the identity and
/// the follower's matches are bit-identical to the leader's at that
/// position.  When the manifest stops covering the follower's cursor
/// (a checkpoint generation switch pruned the segments it still
/// needed — e.g. after a failover), the follower *resyncs*: it
/// rebuilds its engine from the manifest's snapshot, resets the
/// cursor to the snapshot point, and resumes tailing.  A batch is
/// never applied twice: the reader's cursor is monotone and a resync
/// jumps it forward, never back.
///
/// Clock discipline: each follower accrues a virtual critical-path
/// clock — modeled link seconds per shipped batch (replica/
/// transport.hpp) plus apply seconds under the inner engine's own
/// declared clock.  Never host wall time.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "persist/wal_reader.hpp"
#include "replica/transport.hpp"

namespace bdsm::replica {

class Follower {
 public:
  /// A fresh clone of the leader at stream position 0.  `inner_spec`
  /// is the canonical inner engine spec; `dir` the leader's shipping
  /// directory.  `transport` must outlive the follower.
  Follower(int id, const std::string& inner_spec, const LabeledGraph& g,
           const EngineOptions& options, const TransportModel* transport,
           const std::string& dir);

  /// Mirrors of the leader-side query mutations (the group forwards
  /// every AddQuery/RemoveQuery/RestoreQuery here, so public ids align
  /// across the whole replica set).
  QueryId AddQuery(const QueryGraph& q) { return engine_->AddQuery(q); }
  bool RemoveQuery(QueryId id) { return engine_->RemoveQuery(id); }
  bool RestoreQuery(const QueryGraph& q, QueryId id) {
    return engine_->RestoreQuery(q, id);
  }

  /// Applies every durable WAL batch past the cursor; resyncs from
  /// the snapshot when the manifest no longer covers it.  Returns the
  /// number of batches applied this call.  Throws PersistError on
  /// real log corruption (never on a torn live tail).
  size_t CatchUp();

  int id() const { return id_; }
  Engine* engine() { return engine_.get(); }
  const Engine* engine() const { return engine_.get(); }
  /// Global stream index of the next batch this follower will apply.
  uint64_t next_batch() const { return reader_.next_batch(); }
  /// Stream ops covered so far (applied + skipped over by snapshot
  /// resyncs) — the group's lag_updates accounting reads this.
  uint64_t covered_ops() const { return covered_ops_; }

  uint64_t applied_batches() const { return applied_batches_; }
  uint64_t applied_ops() const { return applied_ops_; }
  uint64_t resyncs() const { return resyncs_; }
  double transport_seconds() const { return transport_seconds_; }
  double apply_seconds() const { return apply_seconds_; }

  /// Hands the inner engine off (failover verification consumes the
  /// elected follower); the follower is unusable afterwards.
  std::unique_ptr<Engine> TakeEngine() { return std::move(engine_); }

 private:
  /// Rebuild from the manifest's snapshot (generation gap).
  void Resync();
  double ApplyLatencySeconds(const BatchReport& report) const;

  int id_;
  EngineOptions options_;
  const TransportModel* transport_;
  std::unique_ptr<Engine> engine_;
  persist::WalReader reader_;
  ClockDomain clock_ = ClockDomain::kHostWall;
  uint64_t covered_ops_ = 0;
  uint64_t applied_batches_ = 0;
  uint64_t applied_ops_ = 0;
  uint64_t resyncs_ = 0;
  double transport_seconds_ = 0.0;
  double apply_seconds_ = 0.0;
};

}  // namespace bdsm::replica
