/// \file failover.hpp
/// The `failover` drill: run a replicated engine mid-stream, kill the
/// leader, promote a follower, finish the stream, and verify the
/// stitched run against an *unreplicated* reference nobody killed.
///
/// This is the replication subsystem's end-to-end acceptance drill —
/// what `bench_scenarios --failover-at K` and the `scenario_failover`
/// CI smoke entry execute:
///
///   1. cold:    run the full scenario stream on the bare inner
///               engine (the unreplicated reference);
///   2. prefix:  run the first K batches through the replica group
///               (leader applies + tees, followers tail the WAL);
///   3. kill:    KillLeader() — the leader's WAL closes, the group
///               refuses further batches;
///   4. promote: Failover() — the elected follower restores from the
///               latest checkpoint generation, replays the WAL tail,
///               and is verified bit-identical (graph replica + stream
///               position) against its own drained live engine;
///   5. tail:    finish batches [K, end) on the promoted group;
///   6. compare: per-batch ops/match/truncation counts of
///               prefix + tail must equal cold exactly, and every
///               follower's observed staleness must have stayed within
///               the poll_every bound.
///
/// The count comparison here is the driver-level verdict; the
/// bit-level verification (per-query match vectors, order and flags
/// included, across gamma/tf/multi/sharded inners) lives in
/// tests/replica_test.cpp per the invariants of docs/REPLICATION.md.
#pragma once

#include <string>

#include "core/replication.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm::replica {

struct FailoverOutcome {
  workload::ScenarioReport cold;    ///< unreplicated reference run
  workload::ScenarioReport prefix;  ///< replica group, batches [0, kill)
  workload::ScenarioReport tail;    ///< promoted group, [kill, end)
  uint64_t killed_at = 0;           ///< stream index of the leader kill
  /// Group accounting after the tail (follower rows describe the
  /// post-drain quiesced group; the elected follower was promoted away
  /// and no longer appears).
  ReplicationStats stats;
  /// The staleness contract: every follower's worst observed lag must
  /// stay <= poll_every (ReplicaOptions) across the whole run,
  /// failover included.
  size_t lag_bound = 0;
  bool lag_bounded = false;
  /// Per-batch ops/positive/negative/truncation counts of prefix+tail
  /// equal cold's, batch for batch.
  bool identical = false;
  std::string detail;  ///< human-readable verdict / first divergence
};

/// Runs the failover drill described above.  `engine_spec` may be a
/// bare inner spec ("gamma", "sharded(gamma, shards=2)") — it is then
/// wrapped as `replicated(<spec>)` with `options.replica` defaults —
/// or an explicit `replicated(...)` spec whose inner child becomes the
/// unreplicated reference.  `kill_after_batches` is clamped to the
/// stream length.  Throws EngineSpecError / PersistError on setup
/// failures; a *divergent* recovery is reported through
/// `identical`/`detail`, not thrown — drivers print it and exit
/// nonzero.
FailoverOutcome RunFailoverScenario(const workload::ScenarioSpec& spec,
                                    uint64_t seed,
                                    const std::string& engine_spec,
                                    size_t kill_after_batches,
                                    const EngineOptions& options = {});

}  // namespace bdsm::replica
