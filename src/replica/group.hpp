/// \file group.hpp
/// The replica group: a registry wrapper (`replicated(<inner>,
/// followers=N, ...)`) that makes any engine a WAL-shipping leader
/// with N follower replicas and failover.
///
/// Topology (docs/REPLICATION.md):
///
///   ProcessBatch ──> leader (inner engine) ──> WAL tee (persist/)
///                                                │  shipping dir
///                          modeled link          ▼
///   follower 0..N-1  <── WalReader::Poll() ── segments + MANIFEST
///
/// The leader is the inner engine; every phase forwards to it 1:1, so
/// a replicated engine's reports are bit-identical to the bare inner
/// engine's (tested).  After each digested batch the group tees the
/// *sanitized* batch through its own Checkpointer (WAL + periodic
/// snapshots, one tee layer exactly — do not attach a second
/// checkpointer to a replicated engine) and advances any follower
/// whose staleness reached `poll_every` batches, which bounds
/// observable lag by `poll_every` (the `replica.lag_batches` /
/// `replica.lag_updates` gauges).
///
/// Failover (`ReplicationControl::KillLeader` + `Failover`): the
/// elected (most caught-up) follower restores from the latest
/// checkpoint generation, replays the WAL tail, and is verified
/// bit-identical — graph replica and stream position — against its
/// own drained live engine before it resumes as leader under a fresh
/// checkpoint generation.  Acknowledged batches were durable before
/// the kill, so the takeover loses nothing (the `failover` scenario
/// drill proves the completed run equals an uninterrupted one).
///
/// Durability model for query mutations (inherited from PR 5's WAL,
/// which records *batches* only): AddQuery/RemoveQuery after shipping
/// has begun trigger an immediate new checkpoint generation, so every
/// snapshot a follower can resync from carries the query set that was
/// live at its stream position.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "persist/checkpoint.hpp"
#include "replica/follower.hpp"
#include "replica/transport.hpp"

namespace bdsm::replica {

class ReplicatedEngine : public Engine, public ReplicationControl {
 public:
  static constexpr size_t kDefaultFollowers = 2;

  /// `spec` is the *inner* engine's spec subtree; replica knobs come
  /// from `options.replica` (the registry's `replicated(...)` keys are
  /// already applied onto it).  An empty `options.replica.dir` uses a
  /// fresh directory under the system temp dir, removed with the
  /// group.
  ReplicatedEngine(const EngineSpec& spec, const LabeledGraph& g,
                   const EngineOptions& options);
  ~ReplicatedEngine() override;

  const char* Name() const override { return "replicated"; }
  EngineInfo Describe() const override;

  /// Query mutations mirror across the leader and every follower, so
  /// public ids align across the replica set by construction.
  QueryId AddQuery(const QueryGraph& q) override;
  bool RemoveQuery(QueryId id) override;
  std::vector<QueryId> QueryIds() const override;
  std::vector<RegisteredQuery> RegisteredQueries() const override;
  bool RestoreQuery(const QueryGraph& q, QueryId id) override;

  const LabeledGraph& host_graph() const override;

  ReplicationControl* replication_control() override { return this; }

  // --- ReplicationControl ---
  size_t NumFollowers() const override { return followers_.size(); }
  ReplicationStats Stats() const override;
  const Engine* FollowerEngine(size_t index) const override;
  void DrainFollowers() override;
  void KillLeader() override;
  bool Failover() override;
  bool LeaderDead() const override { return leader_dead_; }

  const std::string& dir() const { return dir_; }

 protected:
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& options,
                     BatchReport* report) override;
  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& options,
                      BatchReport* report) override;
  void OnBatchDigested(const UpdateBatch& batch,
                       const BatchReport& report) override;

 private:
  /// First tee: Begin the checkpoint so pre-stream query
  /// registrations land in the base snapshot.
  void EnsureShipping();
  /// Query mutations after shipping began cut a new generation (see
  /// file comment).
  void RecheckpointAfterMutation();
  /// Catches up every follower whose lag reached `poll_every`
  /// (`force` catches up regardless) and publishes the lag gauges.
  void AdvanceFollowers(bool force);
  uint64_t LeaderNextBatch() const;

  EngineOptions options_;
  std::string dir_;
  bool own_dir_ = false;
  TransportModel transport_;
  std::unique_ptr<Engine> leader_;
  std::vector<std::unique_ptr<Follower>> followers_;
  std::unique_ptr<persist::Checkpointer> checkpointer_;
  bool shipping_ = false;
  bool leader_dead_ = false;

  /// Stream ops teed so far (follower lag_updates accounting).
  uint64_t leader_ops_ = 0;
  uint64_t shipped_batches_ = 0;
  uint64_t shipped_bytes_ = 0;
  uint64_t failovers_ = 0;
  double last_failover_seconds_ = 0.0;
  uint64_t last_failover_replayed_ = 0;
  /// Worst pre-poll staleness ever observed, per follower id.
  std::vector<uint64_t> max_lag_;
};

/// Registers the `replicated` wrapper (called by the EngineRegistry
/// constructor, like serve::RegisterServeEngines).
void RegisterReplicaEngines(EngineRegistry* registry);

}  // namespace bdsm::replica
