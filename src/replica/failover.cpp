#include "replica/failover.hpp"

#include <algorithm>
#include <sstream>

#include "util/common.hpp"

namespace bdsm::replica {

namespace {

/// First difference between cold batch `index` and the stitched run's
/// metric for the same stream batch; "" when equal.  (Counts only —
/// the replicated run's latency legitimately differs from the bare
/// inner engine's only in the replica layer's own modeled columns,
/// but timing is never part of a correctness verdict.)
std::string DiffBatch(size_t index, const workload::ScenarioBatchMetric& cold,
                      const workload::ScenarioBatchMetric& stitched) {
  std::ostringstream out;
  if (cold.ops != stitched.ops) {
    out << "ops " << cold.ops << " vs " << stitched.ops;
  } else if (cold.positive_matches != stitched.positive_matches) {
    out << "+matches " << cold.positive_matches << " vs "
        << stitched.positive_matches;
  } else if (cold.negative_matches != stitched.negative_matches) {
    out << "-matches " << cold.negative_matches << " vs "
        << stitched.negative_matches;
  } else if (cold.truncated_queries != stitched.truncated_queries) {
    out << "truncated " << cold.truncated_queries << " vs "
        << stitched.truncated_queries;
  } else {
    return "";
  }
  return "batch " + std::to_string(index) + " diverges: " + out.str();
}

}  // namespace

FailoverOutcome RunFailoverScenario(const workload::ScenarioSpec& spec,
                                    uint64_t seed,
                                    const std::string& engine_spec,
                                    size_t kill_after_batches,
                                    const EngineOptions& options) {
  FailoverOutcome out;
  workload::ScenarioRunner runner(spec, seed);
  const size_t kill = std::min(kill_after_batches, runner.stream().size());
  out.killed_at = kill;

  // Resolve the pair of specs: the replicated group under test and the
  // bare inner engine that serves as the uninterrupted reference.
  const EngineRegistry& registry = EngineRegistry::Instance();
  EngineSpec canonical =
      registry.Canonicalize(EngineSpec::Parse(engine_spec));
  std::string replicated_spec;
  std::string inner_spec;
  if (canonical.name == "replicated") {
    replicated_spec = engine_spec;
    inner_spec = canonical.children.front().ToString();
  } else {
    replicated_spec = "replicated(" + engine_spec + ")";
    inner_spec = engine_spec;
  }

  // 1. The unreplicated reference.
  out.cold = runner.Run(inner_spec, options);

  // 2-5. The replica group lives across the kill, so the drill owns
  //      it (the runner's controls.engine path) and registers the
  //      scenario's query set itself, exactly as the fresh path would.
  std::unique_ptr<Engine> group =
      MakeEngine(replicated_spec, runner.graph(), options);
  ReplicationControl* rc = group->replication_control();
  GAMMA_CHECK_MSG(rc != nullptr,
                  "failover drill needs a replication-capable engine");
  // The staleness bound comes from the group's *effective* cadence
  // (spec keys may override whatever `options` carried).
  out.lag_bound = static_cast<size_t>(rc->Stats().poll_every);
  for (const QueryGraph& q : runner.queries()) group->AddQuery(q);

  {
    workload::ScenarioRunner::RunControls controls;
    controls.engine = group.get();
    controls.max_batches = kill;
    out.prefix = runner.Run(replicated_spec, options, controls);
  }

  rc->KillLeader();
  GAMMA_CHECK_MSG(rc->Failover(),
                  "failover drill: no follower left to promote");

  {
    workload::ScenarioRunner::RunControls controls;
    controls.engine = group.get();
    controls.first_batch = kill;
    out.tail = runner.Run(replicated_spec, options, controls);
  }
  out.stats = rc->Stats();

  // 6. Verdict: stitched per-batch counts equal the cold run's, batch
  //    for batch, and the staleness contract held throughout.
  out.identical = true;
  if (out.prefix.batches.size() + out.tail.batches.size() !=
      out.cold.batches.size()) {
    out.identical = false;
    out.detail = "batch count mismatch: cold ran " +
                 std::to_string(out.cold.batches.size()) +
                 ", prefix+tail ran " +
                 std::to_string(out.prefix.batches.size() +
                                out.tail.batches.size());
  }
  for (size_t i = 0; out.identical && i < out.cold.batches.size(); ++i) {
    const workload::ScenarioBatchMetric& stitched =
        i < out.prefix.batches.size()
            ? out.prefix.batches[i]
            : out.tail.batches[i - out.prefix.batches.size()];
    std::string diff = DiffBatch(i, out.cold.batches[i], stitched);
    if (!diff.empty()) {
      out.identical = false;
      out.detail = std::move(diff);
    }
  }
  out.lag_bounded = true;
  for (const ReplicaStats& r : out.stats.replicas) {
    if (r.max_lag_batches > out.lag_bound || r.lag_batches != 0) {
      out.lag_bounded = false;
      if (out.identical) {
        out.identical = false;
        out.detail = "replica " + std::to_string(r.replica) +
                     " broke the staleness bound: max lag " +
                     std::to_string(r.max_lag_batches) + " batches (bound " +
                     std::to_string(out.lag_bound) + "), residual lag " +
                     std::to_string(r.lag_batches);
      }
    }
  }
  if (out.identical) {
    out.detail =
        "leader killed at batch " + std::to_string(out.killed_at) + " (" +
        std::to_string(out.stats.last_failover_replayed) +
        " WAL batches replayed by the promoted follower): all " +
        std::to_string(out.cold.batches.size()) +
        " batches match the unreplicated run, follower lag <= " +
        std::to_string(out.lag_bound);
  }
  return out;
}

}  // namespace bdsm::replica
