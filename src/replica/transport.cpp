#include "replica/transport.hpp"

namespace bdsm::replica {

namespace {
/// Trace-format record sizes (workload/trace.hpp): one u64 op count
/// per batch, 13 bytes per op.
constexpr uint64_t kBatchHeaderBytes = 8;
constexpr uint64_t kOpBytes = 13;
}  // namespace

TransportModel::TransportModel(const ReplicaOptions& options)
    : link_latency_seconds_(options.link_latency_seconds),
      election_timeout_seconds_(options.election_timeout_seconds) {
  double gbps = options.link_gbits_per_second;
  if (gbps <= 0.0) gbps = 10.0;
  bytes_per_second_ = gbps * 1e9 / 8.0;
}

uint64_t TransportModel::WireBytes(size_t num_ops) {
  return kBatchHeaderBytes + kOpBytes * static_cast<uint64_t>(num_ops);
}

uint64_t TransportModel::BatchWireBytes(const UpdateBatch& batch) {
  return WireBytes(batch.size());
}

double TransportModel::ShipSeconds(uint64_t bytes) const {
  return link_latency_seconds_ +
         static_cast<double>(bytes) / bytes_per_second_;
}

}  // namespace bdsm::replica
