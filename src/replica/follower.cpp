#include "replica/follower.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/snapshot.hpp"
#include "util/common.hpp"

namespace bdsm::replica {

Follower::Follower(int id, const std::string& inner_spec,
                   const LabeledGraph& g, const EngineOptions& options,
                   const TransportModel* transport, const std::string& dir)
    : id_(id),
      options_(options),
      transport_(transport),
      engine_(MakeEngine(inner_spec, g, options)),
      reader_(dir, 0) {
  clock_ = engine_->Describe().clock;
}

double Follower::ApplyLatencySeconds(const BatchReport& report) const {
  switch (clock_) {
    case ClockDomain::kModeledDevice:
      return report.ModeledSeconds(options_.gamma.device);
    case ClockDomain::kCriticalPath:
      return report.critical_path_seconds;
    case ClockDomain::kHostWall:
      return report.host_wall_seconds;
  }
  return 0.0;
}

void Follower::Resync() {
  persist::Manifest manifest = persist::ReadManifest(reader_.dir());
  persist::Snapshot snap = persist::ReadSnapshot(
      reader_.dir() + "/" + manifest.snapshot_file);
  engine_ = persist::BuildEngineFromSnapshot(snap, options_);
  clock_ = engine_->Describe().clock;
  reader_.Reset(snap.stream_offset);
  covered_ops_ = snap.totals.ops;
  ++resyncs_;
  // The snapshot itself ships over the link too.
  const uint64_t bytes = TransportModel::WireBytes(
      static_cast<size_t>(snap.totals.ops));
  transport_seconds_ += transport_->ShipSeconds(bytes);
  BDSM_OBS_COUNT("replica.resyncs", 1);
}

size_t Follower::CatchUp() {
  GAMMA_CHECK_MSG(engine_ != nullptr,
                  "follower used after its engine was taken");
  persist::WalReader::PollResult poll = reader_.Poll();
  if (poll.no_manifest) return 0;
  if (poll.gap) {
    Resync();
    poll = reader_.Poll();
    // One resync lands the cursor on the freshly written manifest's
    // snapshot point, which its segments cover by construction.
    GAMMA_CHECK_MSG(!poll.gap, "WAL gap immediately after resync");
  }
  size_t applied = 0;
  for (const UpdateBatch& batch : poll.batches) {
    const uint64_t stream_index = reader_.next_batch() -
                                  poll.batches.size() + applied;
    const uint64_t bytes = TransportModel::BatchWireBytes(batch);
    const double ship = transport_->ShipSeconds(bytes);
#if BDSM_OBS
    const double span_start = transport_seconds_ + apply_seconds_;
#endif
    BatchReport report = engine_->ProcessBatch(batch);
    const double apply = ApplyLatencySeconds(report);
    transport_seconds_ += ship;
    apply_seconds_ += apply;
    covered_ops_ += batch.size();
    applied_ops_ += batch.size();
    ++applied_batches_;
    ++applied;
#if BDSM_OBS
    if (obs::Enabled()) {
      BDSM_OBS_COUNT("replica.applied_batches", 1);
      BDSM_OBS_COUNT("replica.applied_ops", batch.size());
      obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
      if (tracer.enabled()) {
        // Ship + apply tile end to end on this follower's virtual
        // critical-path clock, tagged with its replica id.
        obs::TraceSpan ship_span;
        ship_span.name = "replica.ship";
        ship_span.domain = obs::Domain::kCriticalPath;
        ship_span.start_s = span_start;
        ship_span.dur_s = ship;
        ship_span.batch = stream_index;
        ship_span.replica = id_;
        ship_span.detail = "bytes=" + std::to_string(bytes);
        tracer.Record(std::move(ship_span));
        obs::TraceSpan apply_span;
        apply_span.name = "replica.apply";
        apply_span.domain = obs::Domain::kCriticalPath;
        apply_span.start_s = span_start + ship;
        apply_span.dur_s = apply;
        apply_span.batch = stream_index;
        apply_span.replica = id_;
        apply_span.detail = "ops=" + std::to_string(batch.size());
        tracer.Record(std::move(apply_span));
      }
    }
#endif
  }
  return applied;
}

}  // namespace bdsm::replica
