/// \file wal.hpp
/// Write-ahead log on the trace format: the durable tail of the
/// persistence subsystem.
///
/// The WAL tees every applied `UpdateBatch` into append-only *segment*
/// files that reuse the versioned binary trace format of
/// workload/trace.hpp ("BDSMTRC1") byte for byte — a WAL segment IS a
/// replayable trace, so the whole record/replay toolchain (golden
/// traces, `bench_scenarios --replay`, the TraceReader recover mode)
/// works on recovery tails for free.  Differences from a recorded
/// trace are operational, not structural:
///
///  * fsync on batch boundaries (WalOptions::sync_every_batch): a
///    batch acknowledged by Append survives a crash;
///  * segment rotation every `batches_per_segment` batches (and at
///    every snapshot), so a checkpoint can drop fully-covered segments
///    and the recovery tail stays O(tail);
///  * the header's batch count is only patched when a segment closes
///    cleanly — a crashed segment reads back through the recover mode
///    ("stop at last good batch"), which is exactly the torn-final-
///    write semantics recovery wants.
///
/// Segment files are named `wal-g<generation>-<first_batch>.trc`:
/// `<generation>` is the checkpoint generation (manifest.hpp) and
/// `<first_batch>` the global stream index of the segment's first
/// batch, both zero-padded so lexicographic order within a generation
/// is replay order.  Replay order is authoritative from the manifest,
/// never from directory listings.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/update_stream.hpp"
#include "workload/trace.hpp"

namespace bdsm::persist {

struct WalOptions {
  /// Rotate to a fresh segment after this many batches (snapshots also
  /// force a rotation so segment boundaries align with checkpoints).
  size_t batches_per_segment = 256;
  /// fsync after every appended batch.  Turning this off trades the
  /// crash-durability of the last few batches for throughput (the OS
  /// still sees every byte; only the storage barrier is skipped).
  bool sync_every_batch = true;
};

/// One WAL segment on disk: `file` (relative to the checkpoint dir)
/// holds batches [first_batch, first_batch + num_batches); num_batches
/// is 0 for the still-open tail segment (its count is discovered by
/// the recover-mode reader).
struct WalSegment {
  std::string file;
  uint64_t first_batch = 0;

  friend bool operator==(const WalSegment&, const WalSegment&) = default;
};

/// Appends batches to rotating trace segments in a checkpoint
/// directory.  Construction opens the first segment; Append tees one
/// batch (fsync per options); Close() finishes the current segment
/// cleanly (patches its header count).  A WalWriter that hit an I/O
/// error reports !ok() and ignores further appends — the caller
/// decides whether to fail the stream or carry on without durability.
class WalWriter {
 public:
  /// `generation` is the checkpoint generation embedded in segment
  /// file names (persist/manifest.hpp): segments of different
  /// checkpoint generations never collide, so writing a new
  /// checkpoint into a reused directory leaves the live one's
  /// segments untouched until the manifest switches.
  WalWriter(std::string dir, workload::TraceMeta meta,
            WalOptions options = {}, uint64_t next_batch = 0,
            uint64_t generation = 1);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool ok() const { return ok_; }

  /// Appends the batch as global index next_batch(); rotates first
  /// when the current segment is full.  Returns the index the batch
  /// was logged under.
  uint64_t Append(const UpdateBatch& batch);

  /// Closes the current segment and opens a fresh one starting at
  /// next_batch().  Called on snapshot boundaries so the manifest's
  /// tail is segment-aligned; a no-op on an empty current segment.
  void Rotate();

  /// Cleanly closes the current segment.  Idempotent; the destructor
  /// calls it.
  void Close();

  /// Global index the next appended batch will get.
  uint64_t next_batch() const { return next_batch_; }

  /// Every segment this writer created, in order (the open tail
  /// segment included).
  const std::vector<WalSegment>& segments() const { return segments_; }

  static std::string SegmentFileName(uint64_t generation,
                                     uint64_t first_batch);

 private:
  void OpenSegment();

  std::string dir_;
  workload::TraceMeta meta_;
  WalOptions options_;
  uint64_t next_batch_;
  uint64_t generation_;
  uint64_t segment_first_batch_;
  std::unique_ptr<workload::TraceWriter> writer_;
  std::vector<WalSegment> segments_;
  bool ok_ = true;
};

/// Replays the WAL tail: batches with global indexes >= `from_batch`
/// out of `segments` (manifest order, ascending first_batch).  The
/// final segment is read in recover mode — a torn final write there is
/// expected crash wreckage and stops the tail at the last good batch,
/// reported through `*torn` when non-null.  A torn or corrupt batch in
/// a non-final segment, a missing segment file, or segments whose
/// indexes do not chain contiguously throw PersistError (that is data
/// loss, not a crash artifact).
std::vector<UpdateBatch> ReadWalTail(const std::string& dir,
                                     const std::vector<WalSegment>& segments,
                                     uint64_t from_batch,
                                     bool* torn = nullptr);

}  // namespace bdsm::persist
