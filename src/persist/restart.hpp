/// \file restart.hpp
/// The `restart` scenario: kill a serving run mid-stream, warm-restore
/// it from its checkpoint, finish the stream, and verify the stitched
/// run against an uninterrupted cold run.
///
/// This is the persistence subsystem's end-to-end acceptance drill —
/// what `bench_scenarios --restart-at K` and the `scenario_restart`
/// CI smoke entry execute:
///
///   1. cold:    run the full scenario stream on a fresh engine (the
///               reference nobody interrupted);
///   2. prefix:  run the first K batches on a second fresh engine,
///               checkpointing into `checkpoint_dir` (snapshot policy
///               + WAL tee), then stop — the simulated kill point;
///   3. restore: RestoreEngine(checkpoint_dir) — snapshot + WAL tail,
///               O(tail), not O(stream);
///   4. tail:    finish batches [K, end) on the restored engine;
///   5. compare: per-batch ops/match/truncation counts of
///               prefix + tail must equal cold exactly.
///
/// The count comparison here is the driver-level verdict; the
/// bit-level verification (per-query match vectors, order included)
/// lives in tests/persist_test.cpp per the recovery invariants of
/// docs/PERSISTENCE.md.
#pragma once

#include <string>

#include "persist/checkpoint.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm::persist {

struct RestartOutcome {
  workload::ScenarioReport cold;    ///< uninterrupted reference run
  workload::ScenarioReport prefix;  ///< batches [0, kill) + checkpoint
  workload::ScenarioReport tail;    ///< restored engine, [restored, end)
  /// Stream index the restore resumed at (== the kill point when the
  /// WAL tail was intact).
  uint64_t restored_at = 0;
  uint64_t wal_batches_replayed = 0;
  bool wal_tail_torn = false;
  /// Totals the restored engine resumed with (snapshot + tail replay).
  SnapshotTotals restored_totals;
  /// Per-batch ops/positive/negative/truncation counts of prefix+tail
  /// equal cold's, batch for batch.
  bool identical = false;
  std::string detail;  ///< human-readable verdict / first divergence
};

/// Runs the restart drill described above.  `kill_after_batches` is
/// clamped to the stream length; `policy` defaults to a snapshot every
/// 2 batches so the drill exercises snapshot supersession + WAL-tail
/// replay, not just the base snapshot.  Throws PersistError /
/// EngineSpecError on setup failures; a *divergent* recovery is
/// reported through `identical`/`detail`, not thrown — drivers print
/// it and exit nonzero.
RestartOutcome RunRestartScenario(
    const workload::ScenarioSpec& spec, uint64_t seed,
    const std::string& engine_spec, size_t kill_after_batches,
    const std::string& checkpoint_dir, const EngineOptions& options = {},
    const CheckpointPolicy& policy = {.every_batches = 2,
                                      .every_updates = 0,
                                      .prune = true});

}  // namespace bdsm::persist
