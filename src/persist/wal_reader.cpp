#include "persist/wal_reader.hpp"

#include "persist/snapshot.hpp"  // PersistError

namespace bdsm::persist {

WalReader::PollResult WalReader::Poll() {
  PollResult out;
  Manifest manifest;
  try {
    manifest = ReadManifest(dir_);
  } catch (const PersistError&) {
    // Nothing durable yet (or a writer mid-switch with the .tmp not
    // yet renamed) — both read as "poll again later", never as loss.
    out.no_manifest = true;
    return out;
  }
  out.generation = manifest.generation;
  out.snapshot_batch = manifest.snapshot_batch;

  // Coverage check: the manifest's segments hold batches >=
  // snapshot_batch only.  A cursor behind that point references
  // batches a newer snapshot superseded (and pruning may have
  // unlinked) — the follow contract cannot be met from the log alone.
  if (next_batch_ < manifest.snapshot_batch) {
    out.gap = true;
    return out;
  }
  out.batches = ReadWalTail(dir_, manifest.wal, next_batch_, &out.torn);
  next_batch_ += out.batches.size();
  return out;
}

}  // namespace bdsm::persist
