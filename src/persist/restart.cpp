#include "persist/restart.hpp"

#include <algorithm>
#include <sstream>

namespace bdsm::persist {

namespace {

/// First difference between cold batch `index` and the stitched run's
/// metric for the same stream batch; "" when equal.
std::string DiffBatch(size_t index, const workload::ScenarioBatchMetric& cold,
                      const workload::ScenarioBatchMetric& stitched) {
  std::ostringstream out;
  if (cold.ops != stitched.ops) {
    out << "ops " << cold.ops << " vs " << stitched.ops;
  } else if (cold.positive_matches != stitched.positive_matches) {
    out << "+matches " << cold.positive_matches << " vs "
        << stitched.positive_matches;
  } else if (cold.negative_matches != stitched.negative_matches) {
    out << "-matches " << cold.negative_matches << " vs "
        << stitched.negative_matches;
  } else if (cold.truncated_queries != stitched.truncated_queries) {
    out << "truncated " << cold.truncated_queries << " vs "
        << stitched.truncated_queries;
  } else {
    return "";
  }
  return "batch " + std::to_string(index) + " diverges: " + out.str();
}

}  // namespace

RestartOutcome RunRestartScenario(const workload::ScenarioSpec& spec,
                                  uint64_t seed,
                                  const std::string& engine_spec,
                                  size_t kill_after_batches,
                                  const std::string& checkpoint_dir,
                                  const EngineOptions& options,
                                  const CheckpointPolicy& policy) {
  RestartOutcome out;
  workload::ScenarioRunner runner(spec, seed);
  const size_t kill =
      std::min(kill_after_batches, runner.stream().size());

  // 1. The uninterrupted reference.
  out.cold = runner.Run(engine_spec, options);

  // 2. The run that "dies" after `kill` batches, checkpointing as it
  //    goes.  Checkpointer scope = process lifetime; leaving the scope
  //    is the kill (its WAL closes cleanly — the torn-write variant is
  //    exercised by tests/persist_test.cpp via file surgery).
  {
    Checkpointer checkpointer(checkpoint_dir, policy, WalOptions{},
                              options.gamma.device);
    workload::ScenarioRunner::RunControls controls;
    controls.max_batches = kill;
    controls.checkpointer = &checkpointer;
    out.prefix = runner.Run(engine_spec, options, controls);
  }

  // 3. Warm restore: snapshot + WAL tail.
  RestoredEngine restored =
      RestoreEngine(checkpoint_dir, options, options.gamma.device);
  out.restored_at = restored.next_batch;
  out.wal_batches_replayed = restored.wal_batches_replayed;
  out.wal_tail_torn = restored.wal_tail_torn;
  out.restored_totals = restored.totals;

  // 4. Finish the stream on the restored engine.
  {
    workload::ScenarioRunner::RunControls controls;
    controls.engine = restored.engine.get();
    controls.first_batch = static_cast<size_t>(restored.next_batch);
    out.tail = runner.Run(engine_spec, options, controls);
  }

  // 5. Verdict: the stitched per-batch counts must equal the cold
  //    run's, batch for batch (timing fields are excluded by
  //    construction — only counts are compared).
  out.identical = true;
  if (out.prefix.batches.size() + out.tail.batches.size() !=
      out.cold.batches.size()) {
    out.identical = false;
    out.detail = "batch count mismatch: cold ran " +
                 std::to_string(out.cold.batches.size()) +
                 ", prefix+tail ran " +
                 std::to_string(out.prefix.batches.size() +
                                out.tail.batches.size());
  }
  for (size_t i = 0; out.identical && i < out.cold.batches.size(); ++i) {
    const workload::ScenarioBatchMetric& stitched =
        i < out.prefix.batches.size()
            ? out.prefix.batches[i]
            : out.tail.batches[i - out.prefix.batches.size()];
    std::string diff = DiffBatch(i, out.cold.batches[i], stitched);
    if (!diff.empty()) {
      out.identical = false;
      out.detail = std::move(diff);
    }
  }
  if (out.identical) {
    out.detail = "restore at batch " + std::to_string(out.restored_at) +
                 " (" + std::to_string(out.wal_batches_replayed) +
                 " WAL batches replayed): all " +
                 std::to_string(out.cold.batches.size()) +
                 " batches match the cold run";
  }
  return out;
}

}  // namespace bdsm::persist
