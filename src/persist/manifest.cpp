#include "persist/manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "persist/crc32.hpp"
#include "persist/snapshot.hpp"  // PersistError

namespace bdsm::persist {

namespace {

constexpr char kTmpSuffix[] = ".tmp";

/// fsyncs the directory itself: on POSIX, file creation and rename(2)
/// are directory metadata, durable only once the directory's own fd
/// is synced.  Without this, a power loss can roll back the manifest
/// switch (or the existence of a snapshot/segment file) after the
/// checkpoint already pruned the artifacts the old manifest needs —
/// the "either the old or the new checkpoint" promise of the crash
/// matrix hinges on this barrier.
bool SyncDir(const std::string& dir) {
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  bool ok = fsync(fd) == 0;
  close(fd);
  return ok;
}

std::string Render(const Manifest& m) {
  std::ostringstream out;
  out << "BDSMMANIFEST " << kManifestVersion << "\n";
  out << "generation " << m.generation << "\n";
  out << "engine_spec " << m.engine_spec << "\n";
  out << "scenario " << m.scenario << "\n";
  out << "seed " << m.seed << "\n";
  out << "snapshot " << m.snapshot_file << " " << m.snapshot_batch << "\n";
  for (const WalSegment& seg : m.wal) {
    out << "wal " << seg.file << " " << seg.first_batch << "\n";
  }
  std::string body = out.str();
  char seal[16];
  snprintf(seal, sizeof(seal), "crc %08x\n", Crc32(body));
  return body + seal;
}

/// Splits "key rest-of-line"; returns false on a key-only line.
bool SplitKey(const std::string& line, std::string* key,
              std::string* value) {
  size_t sp = line.find(' ');
  if (sp == std::string::npos) return false;
  *key = line.substr(0, sp);
  *value = line.substr(sp + 1);
  return true;
}

uint64_t ParseU64(const std::string& text, const char* what) {
  char* end = nullptr;
  uint64_t v = strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw PersistError(std::string("manifest has a malformed ") + what +
                       " \"" + text + "\"");
  }
  return v;
}

}  // namespace

void WriteManifest(const std::string& dir, const Manifest& manifest) {
  const std::string path = dir + "/" + kManifestFileName;
  const std::string tmp = path + kTmpSuffix;
  const std::string text = Render(manifest);
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw PersistError("cannot write manifest " + path + ": open failed");
  }
  bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = ok && fflush(f) == 0 && fsync(fileno(f)) == 0;
  ok = (fclose(f) == 0) && ok;
  // rename(2) replaces atomically: a reader (or a crash) sees the old
  // manifest or the new one, never a torn mix.  The directory fsync
  // then makes the switch — and the dir entries of every artifact the
  // new manifest references — durable before the caller may prune
  // what the old manifest needed.
  ok = ok && rename(tmp.c_str(), path.c_str()) == 0 && SyncDir(dir);
  if (!ok) {
    remove(tmp.c_str());
    throw PersistError("cannot write manifest " + path +
                       ": I/O error (tmp write, rename or dir sync "
                       "failed)");
  }
}

Manifest ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw PersistError("no checkpoint in " + dir + ": cannot read " +
                       path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool short_read = ferror(f) != 0;
  fclose(f);
  if (short_read) {
    throw PersistError("cannot read manifest " + path + ": I/O error");
  }

  // Peel + verify the seal first: a flipped bit anywhere in the body
  // must be reported as corruption, not as whatever key it garbled.
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    throw PersistError("manifest " + path +
                       " is missing its crc seal line (truncated file?)");
  }
  std::string body = text.substr(0, crc_pos);
  unsigned long sealed = 0;
  if (sscanf(text.c_str() + crc_pos, "crc %8lx", &sealed) != 1 ||
      static_cast<uint32_t>(sealed) != Crc32(body)) {
    throw PersistError("manifest " + path +
                       " fails its CRC seal (corrupt or hand-edited)");
  }

  Manifest m;
  bool have_header = false, have_spec = false, have_seed = false,
       have_snapshot = false, have_scenario = false;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string key, value;
    if (!SplitKey(line, &key, &value)) {
      throw PersistError("manifest " + path + " has a malformed line \"" +
                         line + "\"");
    }
    if (!have_header) {
      if (key != "BDSMMANIFEST") {
        throw PersistError("manifest " + path +
                           " does not start with BDSMMANIFEST");
      }
      if (ParseU64(value, "version") != kManifestVersion) {
        throw PersistError("manifest " + path + " has version " + value +
                           "; this build reads version " +
                           std::to_string(kManifestVersion));
      }
      have_header = true;
    } else if (key == "generation") {
      m.generation = ParseU64(value, "generation");
    } else if (key == "engine_spec") {
      m.engine_spec = value;
      have_spec = true;
    } else if (key == "scenario") {
      m.scenario = value;
      have_scenario = true;
    } else if (key == "seed") {
      m.seed = ParseU64(value, "seed");
      have_seed = true;
    } else if (key == "snapshot") {
      std::string file, batch;
      if (!SplitKey(value, &file, &batch)) {
        throw PersistError("manifest " + path +
                           " has a malformed snapshot line");
      }
      m.snapshot_file = file;
      m.snapshot_batch = ParseU64(batch, "snapshot batch");
      have_snapshot = true;
    } else if (key == "wal") {
      std::string file, first;
      if (!SplitKey(value, &file, &first)) {
        throw PersistError("manifest " + path +
                           " has a malformed wal line");
      }
      m.wal.push_back(WalSegment{file, ParseU64(first, "wal offset")});
    } else {
      throw PersistError("manifest " + path + " has an unknown key \"" +
                         key + "\" (newer format?)");
    }
  }
  if (!have_header || !have_spec || !have_seed || !have_snapshot ||
      !have_scenario) {
    throw PersistError("manifest " + path +
                       " is missing required keys (truncated file?)");
  }
  return m;
}

}  // namespace bdsm::persist
