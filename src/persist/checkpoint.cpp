#include "persist/checkpoint.hpp"

#include <cinttypes>
#include <filesystem>
#include <set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/wal_reader.hpp"
#include "util/logging.hpp"

namespace bdsm::persist {

namespace fs = std::filesystem;

namespace {

std::string SnapshotFileName(uint64_t generation, uint64_t batch) {
  char buf[48];
  snprintf(buf, sizeof(buf), "snapshot-g%03" PRIu64 "-%010" PRIu64 ".snap",
           generation, batch);
  return buf;
}

/// Is `name` an artifact this layer owns?  (The sweep in Begin and the
/// pruner must never unlink a user's unrelated file that happens to
/// live in the directory.)
bool IsCheckpointArtifact(const std::string& name) {
  auto has_prefix_suffix = [&](const char* prefix, const char* suffix) {
    std::string_view n(name), p(prefix), s(suffix);
    return n.size() >= p.size() + s.size() && n.substr(0, p.size()) == p &&
           n.substr(n.size() - s.size()) == s;
  };
  return name == kManifestFileName ||
         name == std::string(kManifestFileName) + ".tmp" ||
         has_prefix_suffix("snapshot-", ".snap") ||
         has_prefix_suffix("wal-", ".trc");
}

double ClockLatencySeconds(ClockDomain clock, const BatchReport& report,
                           const DeviceConfig& device) {
  switch (clock) {
    case ClockDomain::kModeledDevice:
      return report.ModeledSeconds(device);
    case ClockDomain::kCriticalPath:
      return report.critical_path_seconds;
    case ClockDomain::kHostWall:
      return report.host_wall_seconds;
  }
  return 0.0;
}

/// Folds one applied batch's report into the running aggregates (the
/// same arithmetic on the live path and the restore-replay path, so
/// restored totals match what an uninterrupted run accrues).
void AccumulateTotals(SnapshotTotals* totals, const UpdateBatch& batch,
                      const BatchReport& report, ClockDomain clock,
                      const DeviceConfig& device) {
  totals->batches += 1;
  totals->ops += batch.size();
  size_t truncated = 0;
  for (const QueryReport& qr : report.queries) {
    totals->positive_matches += qr.num_positive;
    totals->negative_matches += qr.num_negative;
    if (qr.Truncated()) ++truncated;
  }
  totals->truncated_queries += truncated;
  if (truncated > 0) totals->truncated_batches += 1;
  totals->update_makespan_ticks += report.update_stats.makespan_ticks;
  totals->match_makespan_ticks += report.match_stats.makespan_ticks;
  totals->latency_seconds += ClockLatencySeconds(clock, report, device);
}

}  // namespace

Checkpointer::Checkpointer(std::string dir, CheckpointPolicy policy,
                           WalOptions wal_options,
                           const DeviceConfig& device)
    : dir_(std::move(dir)),
      policy_(policy),
      wal_options_(wal_options),
      device_(device) {}

Checkpointer::~Checkpointer() {
  try {
    Finish();
  } catch (const PersistError& e) {
    // A destructor must not throw; a failing final manifest write
    // leaves the previous (consistent) checkpoint in place.
    GAMMA_LOG_WARN("checkpoint finish failed: %s", e.what());
  }
}

void Checkpointer::Begin(const Engine& engine, uint64_t seed,
                         std::string scenario, uint64_t stream_offset,
                         const SnapshotTotals& totals) {
  Finish();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw PersistError("cannot create checkpoint directory " + dir_ +
                       ": " + ec.message());
  }
  // A previous checkpoint in this directory stays fully restorable
  // until the new manifest lands: the new generation's artifacts use
  // distinct names, so nothing the live manifest references is
  // touched before the atomic switch below.
  uint64_t generation = 1;
  try {
    generation = ReadManifest(dir_).generation + 1;
  } catch (const PersistError&) {
    // No (readable) previous checkpoint — generation 1, and whatever
    // artifacts litter the directory are unreferenced garbage that
    // the post-switch sweep removes.
  }

  seed_ = seed;
  scenario_ = std::move(scenario);
  clock_ = engine.Describe().clock;
  next_batch_ = stream_offset;
  totals_ = totals;
  ops_since_snapshot_ = 0;
  batches_since_snapshot_ = 0;
  snapshots_taken_ = 0;

  manifest_ = Manifest{};
  manifest_.generation = generation;
  manifest_.engine_spec = engine.Describe().canonical_spec;
  manifest_.scenario = scenario_;
  manifest_.seed = seed_;

  // Base snapshot first, then the WAL, then the manifest referencing
  // both: a crash at any point leaves either the previous checkpoint
  // (manifest untouched so far) or the complete new one.
  Snapshot snap =
      CaptureSnapshot(engine, seed_, scenario_, next_batch_, totals_);
  manifest_.snapshot_file = SnapshotFileName(generation, next_batch_);
  manifest_.snapshot_batch = next_batch_;
  WriteSnapshot(dir_ + "/" + manifest_.snapshot_file, snap);
  ++snapshots_taken_;

  wal_ = std::make_unique<WalWriter>(
      dir_, workload::TraceMeta{seed_, scenario_}, wal_options_,
      next_batch_, generation);
  if (!wal_->ok()) {
    wal_.reset();
    throw PersistError("cannot open WAL in " + dir_);
  }
  manifest_.wal = wal_->segments();
  WriteManifest(dir_, manifest_);  // the atomic old -> new switch

  // Only now is the old checkpoint (and any stray garbage) dead;
  // sweep everything the live manifest does not reference.  Unlink
  // failures are harmless — the next Begin retries.
  std::set<std::string> live;
  live.insert(kManifestFileName);
  live.insert(manifest_.snapshot_file);
  for (const WalSegment& seg : manifest_.wal) live.insert(seg.file);
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    if (IsCheckpointArtifact(name) && live.count(name) == 0) {
      fs::remove(entry.path(), ec);
    }
  }
}

void Checkpointer::OnBatchApplied(const Engine& engine,
                                  const UpdateBatch& batch,
                                  const BatchReport& report) {
  if (wal_ == nullptr) {
    throw PersistError("Checkpointer::OnBatchApplied before Begin");
  }
  size_t segments_before = wal_->segments().size();
#if BDSM_OBS
  // Disabled cost stays one relaxed load: no clock read unless on.
  const double wal_start =
      obs::Enabled() ? obs::TraceRecorder::Instance().HostNowSeconds() : 0.0;
#endif
  wal_->Append(batch);
  if (!wal_->ok()) {
    throw PersistError("WAL append failed in " + dir_ +
                       " (durability contract broken)");
  }
#if BDSM_OBS
  if (obs::Enabled()) {
    BDSM_OBS_COUNT("persist.wal.batches", 1);
    BDSM_OBS_COUNT("persist.wal.ops", batch.size());
    obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
    const double wal_dur = tracer.HostNowSeconds() - wal_start;
    BDSM_OBS_COUNT_US("persist.wal.append_us", wal_dur);
    if (tracer.enabled()) {
      obs::TraceSpan span;
      span.name = "persist.wal.append";
      span.domain = obs::Domain::kHostWall;
      span.start_s = wal_start;
      span.dur_s = wal_dur;
      span.batch = next_batch_;
      tracer.Record(std::move(span));
    }
  }
#endif
  // A size rotation opened a fresh segment; the manifest must name it
  // or a restore between now and the next snapshot loses the tail.
  if (wal_->segments().size() != segments_before) {
    manifest_.wal = wal_->segments();
    WriteManifest(dir_, manifest_);
  }
  ++next_batch_;

  AccumulateTotals(&totals_, batch, report, clock_, device_);

  ++batches_since_snapshot_;
  ops_since_snapshot_ += batch.size();
  const bool batches_due = policy_.every_batches > 0 &&
                           batches_since_snapshot_ >= policy_.every_batches;
  const bool updates_due = policy_.every_updates > 0 &&
                           ops_since_snapshot_ >= policy_.every_updates;
  if (batches_due || updates_due) TakeSnapshot(engine);
}

void Checkpointer::TakeSnapshot(const Engine& engine) {
#if BDSM_OBS
  const double snap_start =
      obs::Enabled() ? obs::TraceRecorder::Instance().HostNowSeconds() : 0.0;
#endif
  Snapshot snap =
      CaptureSnapshot(engine, seed_, scenario_, next_batch_, totals_);
  std::string file = SnapshotFileName(manifest_.generation, next_batch_);
  WriteSnapshot(dir_ + "/" + file, snap);
  ++snapshots_taken_;
#if BDSM_OBS
  if (obs::Enabled()) {
    BDSM_OBS_COUNT("persist.checkpoint.snapshots", 1);
    obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
    const double snap_dur = tracer.HostNowSeconds() - snap_start;
    BDSM_OBS_COUNT_US("persist.checkpoint.snapshot_us", snap_dur);
    if (tracer.enabled()) {
      obs::TraceSpan span;
      span.name = "persist.checkpoint";
      span.domain = obs::Domain::kHostWall;
      span.start_s = snap_start;
      span.dur_s = snap_dur;
      span.batch = next_batch_;
      tracer.Record(std::move(span));
    }
  }
#endif
  // Rotate so the tail is segment-aligned: every WAL segment in the
  // new manifest starts at or after the snapshot batch.
  wal_->Rotate();
  if (!wal_->ok()) {
    throw PersistError("WAL rotation failed in " + dir_);
  }

  std::string old_snapshot = manifest_.snapshot_file;
  std::vector<WalSegment> old_segments = manifest_.wal;
  manifest_.snapshot_file = file;
  manifest_.snapshot_batch = next_batch_;
  manifest_.wal.clear();
  for (const WalSegment& seg : wal_->segments()) {
    if (seg.first_batch >= manifest_.snapshot_batch) {
      manifest_.wal.push_back(seg);
    }
  }
  WriteManifest(dir_, manifest_);
  batches_since_snapshot_ = 0;
  ops_since_snapshot_ = 0;

  if (policy_.prune) {
    // Everything the new manifest no longer references is garbage;
    // unlink failures are harmless (the sweep in Begin retries).
    std::set<std::string> live;
    live.insert(manifest_.snapshot_file);
    for (const WalSegment& seg : manifest_.wal) live.insert(seg.file);
    std::error_code ec;
    if (live.count(old_snapshot) == 0) {
      fs::remove(dir_ + "/" + old_snapshot, ec);
    }
    for (const WalSegment& seg : old_segments) {
      if (live.count(seg.file) == 0) {
        fs::remove(dir_ + "/" + seg.file, ec);
      }
    }
  }
}

void Checkpointer::Finish() {
  if (wal_ == nullptr) return;
  wal_->Close();
  bool wal_ok = wal_->ok();
  wal_.reset();
  if (!wal_ok) {
    throw PersistError("WAL close failed in " + dir_);
  }
}

RestoredEngine RestoreEngine(const std::string& checkpoint_dir,
                             const EngineOptions& options,
                             const DeviceConfig& device) {
  RestoredEngine out;
  out.manifest = ReadManifest(checkpoint_dir);
  Snapshot snap =
      ReadSnapshot(checkpoint_dir + "/" + out.manifest.snapshot_file);
  if (snap.stream_offset != out.manifest.snapshot_batch) {
    throw PersistError(
        "checkpoint " + checkpoint_dir + " is inconsistent: manifest says "
        "the snapshot covers batch " +
        std::to_string(out.manifest.snapshot_batch) +
        ", the snapshot says " + std::to_string(snap.stream_offset));
  }
  out.engine = BuildEngineFromSnapshot(snap, options);
  out.totals = snap.totals;
  out.next_batch = snap.stream_offset;

  const ClockDomain clock = out.engine->Describe().clock;
  // One Poll() of the shared incremental reader IS the tail replay:
  // restore and replication followers read the log through the same
  // code path (persist/wal_reader.hpp).  The manifest was just read,
  // so the cursor is covered by construction — a gap here would mean
  // the directory changed under us mid-restore.
  WalReader reader(checkpoint_dir, snap.stream_offset);
  WalReader::PollResult tail = reader.Poll();
  if (tail.gap || tail.no_manifest) {
    throw PersistError("checkpoint " + checkpoint_dir +
                       " changed during restore (WAL tail no longer "
                       "covers the snapshot point)");
  }
  out.wal_tail_torn = tail.torn;
  for (const UpdateBatch& batch : tail.batches) {
    BatchReport report = out.engine->ProcessBatch(batch);
    AccumulateTotals(&out.totals, batch, report, clock, device);
    out.tail_ops += batch.size();
    out.tail_latency_seconds += ClockLatencySeconds(clock, report, device);
    ++out.next_batch;
    ++out.wal_batches_replayed;
  }
  return out;
}

}  // namespace bdsm::persist
