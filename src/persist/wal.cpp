#include "persist/wal.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"
#include "persist/snapshot.hpp"  // PersistError

namespace bdsm::persist {

std::string WalWriter::SegmentFileName(uint64_t generation,
                                       uint64_t first_batch) {
  char buf[48];
  snprintf(buf, sizeof(buf), "wal-g%03" PRIu64 "-%010" PRIu64 ".trc",
           generation, first_batch);
  return buf;
}

WalWriter::WalWriter(std::string dir, workload::TraceMeta meta,
                     WalOptions options, uint64_t next_batch,
                     uint64_t generation)
    : dir_(std::move(dir)),
      meta_(std::move(meta)),
      options_(options),
      next_batch_(next_batch),
      generation_(generation),
      segment_first_batch_(next_batch) {
  if (options_.batches_per_segment == 0) options_.batches_per_segment = 1;
  OpenSegment();
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::OpenSegment() {
  segment_first_batch_ = next_batch_;
  std::string file = SegmentFileName(generation_, segment_first_batch_);
  writer_ = std::make_unique<workload::TraceWriter>(dir_ + "/" + file,
                                                    meta_);
  if (!writer_->ok()) {
    ok_ = false;
    writer_.reset();
    return;
  }
  segments_.push_back(WalSegment{std::move(file), segment_first_batch_});
}

uint64_t WalWriter::Append(const UpdateBatch& batch) {
  if (!ok_) return next_batch_;
  if (writer_->num_batches() >= options_.batches_per_segment) Rotate();
  if (!ok_) return next_batch_;
  writer_->Append(batch);
  // The durability contract: when Append returns with ok(), this batch
  // is on stable storage (or at least handed to the OS when syncing is
  // off) — the recovery invariant of docs/PERSISTENCE.md.
  if (!writer_->Flush(options_.sync_every_batch)) ok_ = false;
  return next_batch_++;
}

void WalWriter::Rotate() {
  if (!ok_ || writer_ == nullptr) return;
  if (writer_->num_batches() == 0) return;  // already at a boundary
  // The patched header count must be as durable as the batches it
  // describes: a power loss after rotation must not roll a closed
  // segment's header back to the placeholder.
  writer_->Close(options_.sync_every_batch);
  if (!writer_->ok()) {
    ok_ = false;
    return;
  }
  OpenSegment();
  BDSM_OBS_COUNT("persist.wal.rotations", 1);
}

void WalWriter::Close() {
  if (writer_ == nullptr) return;
  writer_->Close(options_.sync_every_batch);
  if (!writer_->ok()) ok_ = false;
  writer_.reset();
}

std::vector<UpdateBatch> ReadWalTail(const std::string& dir,
                                     const std::vector<WalSegment>& segments,
                                     uint64_t from_batch, bool* torn) {
  if (torn != nullptr) *torn = false;
  std::vector<UpdateBatch> out;
  uint64_t next_expected = from_batch;
  for (size_t i = 0; i < segments.size(); ++i) {
    const WalSegment& seg = segments[i];
    const bool final_segment = i + 1 == segments.size();
    // Segments fully before the restore point were superseded by the
    // snapshot; manifests normally prune them, but a tail that still
    // lists them replays fine by skipping.
    uint64_t seg_index = seg.first_batch;
    workload::TraceReader::Options ropt;
    // Every segment is read by its bytes, not its header count: a
    // non-final segment's header patch may have been rotated past
    // without reaching stable storage (sync_every_batch off), in
    // which case the count reads as the placeholder 0 while every
    // batch's data is durable and perfectly replayable.  Only the
    // newest segment may legitimately end *short* (the writer died
    // mid-append); a short non-final segment is corruption and is
    // rejected below.
    ropt.recover_truncated = true;
    workload::TraceReader reader(dir + "/" + seg.file, ropt);
    if (!reader.ok()) {
      // A final segment whose header never made it to disk whole is
      // the crash-while-rotating case: the segment holds no durable
      // batches, so the tail simply ends here.  Anywhere earlier the
      // header was durable before the next segment existed, so damage
      // is corruption.
      if (final_segment) {
        if (torn != nullptr) *torn = true;
        break;
      }
      throw PersistError("WAL segment " + seg.file +
                         " is missing or has a corrupt header");
    }
    while (auto batch = reader.Next()) {
      if (seg_index >= from_batch) {
        if (seg_index != next_expected) {
          throw PersistError(
              "WAL segments do not chain: expected batch " +
              std::to_string(next_expected) + ", segment " + seg.file +
              " supplies batch " + std::to_string(seg_index));
        }
        out.push_back(std::move(*batch));
        ++next_expected;
      }
      ++seg_index;
    }
    if (reader.truncated()) {
      if (!final_segment) {
        // This segment's successor exists, so its data was complete
        // before the crash — ending short means acknowledged batches
        // were lost.  Refuse rather than silently dropping them.
        throw PersistError("WAL segment " + seg.file +
                           " is corrupt mid-stream (not a torn tail)");
      }
      if (torn != nullptr) *torn = true;
      break;  // everything after the tear is unrecoverable by design
    }
  }
  return out;
}

}  // namespace bdsm::persist
