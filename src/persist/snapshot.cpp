#include "persist/snapshot.hpp"

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>

#include "persist/crc32.hpp"

namespace bdsm::persist {

namespace {

// ------------------------------------------------- buffer (de)serial
// Sections are built in memory so their CRC covers exactly the payload
// bytes that hit the disk; everything is explicit little-endian, same
// convention as the trace format (workload/trace.cpp).

void PutU32(std::string* out, uint32_t x) {
  const char b[4] = {static_cast<char>(x), static_cast<char>(x >> 8),
                     static_cast<char>(x >> 16),
                     static_cast<char>(x >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t x) {
  PutU32(out, static_cast<uint32_t>(x));
  PutU32(out, static_cast<uint32_t>(x >> 32));
}

void PutDouble(std::string* out, double x) {
  PutU64(out, std::bit_cast<uint64_t>(x));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over one section payload; any overrun throws
/// with the section name, so a wrong-sized field reads as a friendly
/// corruption report instead of UB.
class Cursor {
 public:
  Cursor(const std::string& data, const char* section)
      : data_(data), section_(section) {}

  uint32_t U32() {
    Need(4);
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  uint64_t U64() {
    uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }

  double Double() { return std::bit_cast<double>(U64()); }

  std::string String() {
    uint32_t n = U32();
    Need(n);
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// Guards count-prefixed loops: a hostile count must fail before the
  /// reserve(), not after the allocator OOMs.
  void NeedAtLeast(uint64_t items, uint64_t bytes_each) {
    if (items > (data_.size() - pos_) / bytes_each) {
      throw PersistError(std::string("snapshot section \"") + section_ +
                         "\" declares more entries than its payload holds "
                         "(corrupt or truncated section)");
    }
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  void Need(uint64_t n) {
    if (n > data_.size() - pos_) {
      throw PersistError(std::string("snapshot section \"") + section_ +
                         "\" ends mid-field (corrupt or truncated section)");
    }
  }

  const std::string& data_;
  const char* section_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------ sections

enum SectionId : uint32_t {
  kSectionMeta = 1,
  kSectionGraph = 2,
  kSectionQueries = 3,
  kSectionTotals = 4,
};

constexpr uint32_t kNumSections = 4;

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionMeta:
      return "meta";
    case kSectionGraph:
      return "graph";
    case kSectionQueries:
      return "queries";
    case kSectionTotals:
      return "totals";
  }
  return "?";
}

std::string EncodeMeta(const Snapshot& s) {
  std::string out;
  PutString(&out, s.engine_spec);
  PutU64(&out, s.seed);
  PutString(&out, s.scenario);
  PutU64(&out, s.stream_offset);
  return out;
}

void DecodeMeta(const std::string& payload, Snapshot* s) {
  Cursor c(payload, "meta");
  s->engine_spec = c.String();
  s->seed = c.U64();
  s->scenario = c.String();
  s->stream_offset = c.U64();
}

std::string EncodeGraph(const LabeledGraph& g) {
  std::string out;
  PutU64(&out, g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    PutU32(&out, g.VertexLabel(v));
  }
  PutU64(&out, g.NumEdges());
  // Canonical edge order (endpoint-sorted, u < v): the byte stream is a
  // pure function of the logical graph, never of update history.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (v < nb.v) {
        PutU32(&out, v);
        PutU32(&out, nb.v);
        PutU32(&out, nb.elabel);
      }
    }
  }
  return out;
}

LabeledGraph DecodeGraph(const std::string& payload) {
  Cursor c(payload, "graph");
  uint64_t nv = c.U64();
  c.NeedAtLeast(nv, 4);
  std::vector<Label> labels;
  labels.reserve(nv);
  for (uint64_t v = 0; v < nv; ++v) labels.push_back(c.U32());
  LabeledGraph g(std::move(labels));
  uint64_t ne = c.U64();
  c.NeedAtLeast(ne, 12);
  for (uint64_t i = 0; i < ne; ++i) {
    VertexId u = c.U32();
    VertexId v = c.U32();
    Label el = c.U32();
    if (u >= g.NumVertices() || v >= g.NumVertices() ||
        !g.InsertEdge(u, v, el)) {
      throw PersistError(
          "snapshot section \"graph\" holds an invalid edge (endpoint out "
          "of range or duplicate) — corrupt section");
    }
  }
  return g;
}

std::string EncodeQueries(const std::vector<RegisteredQuery>& queries) {
  std::string out;
  PutU64(&out, queries.size());
  for (const RegisteredQuery& rq : queries) {
    PutU32(&out, rq.id);
    PutU32(&out, static_cast<uint32_t>(rq.query.NumVertices()));
    for (VertexId u = 0; u < rq.query.NumVertices(); ++u) {
      PutU32(&out, rq.query.VertexLabel(u));
    }
    PutU32(&out, static_cast<uint32_t>(rq.query.NumEdges()));
    // Query edges keep insertion order: QueryGraph equality (and the
    // matching-order construction) see the edge list, so round-trip
    // must preserve it exactly.
    for (const QueryEdge& e : rq.query.edges()) {
      PutU32(&out, e.u1);
      PutU32(&out, e.u2);
      PutU32(&out, e.elabel);
    }
  }
  return out;
}

std::vector<RegisteredQuery> DecodeQueries(const std::string& payload) {
  Cursor c(payload, "queries");
  uint64_t n = c.U64();
  c.NeedAtLeast(n, 12);
  std::vector<RegisteredQuery> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RegisteredQuery rq;
    rq.id = c.U32();
    uint32_t nv = c.U32();
    c.NeedAtLeast(nv, 4);
    std::vector<Label> labels;
    labels.reserve(nv);
    for (uint32_t u = 0; u < nv; ++u) labels.push_back(c.U32());
    rq.query = QueryGraph(std::move(labels));
    uint32_t ne = c.U32();
    c.NeedAtLeast(ne, 12);
    for (uint32_t e = 0; e < ne; ++e) {
      VertexId u1 = c.U32();
      VertexId u2 = c.U32();
      Label el = c.U32();
      if (u1 >= rq.query.NumVertices() || u2 >= rq.query.NumVertices() ||
          !rq.query.AddEdge(u1, u2, el)) {
        throw PersistError(
            "snapshot section \"queries\" holds an invalid query edge — "
            "corrupt section");
      }
    }
    out.push_back(std::move(rq));
  }
  return out;
}

std::string EncodeTotals(const SnapshotTotals& t) {
  std::string out;
  PutU64(&out, t.batches);
  PutU64(&out, t.ops);
  PutU64(&out, t.positive_matches);
  PutU64(&out, t.negative_matches);
  PutU64(&out, t.truncated_queries);
  PutU64(&out, t.truncated_batches);
  PutU64(&out, t.update_makespan_ticks);
  PutU64(&out, t.match_makespan_ticks);
  PutDouble(&out, t.latency_seconds);
  return out;
}

SnapshotTotals DecodeTotals(const std::string& payload) {
  Cursor c(payload, "totals");
  SnapshotTotals t;
  t.batches = c.U64();
  t.ops = c.U64();
  t.positive_matches = c.U64();
  t.negative_matches = c.U64();
  t.truncated_queries = c.U64();
  t.truncated_batches = c.U64();
  t.update_makespan_ticks = c.U64();
  t.match_makespan_ticks = c.U64();
  t.latency_seconds = c.Double();
  return t;
}

// --------------------------------------------------------------- file IO

void WriteSection(FILE* f, uint32_t id, const std::string& payload,
                  const std::string& path) {
  std::string header;
  PutU32(&header, id);
  PutU64(&header, payload.size());
  std::string trailer;
  PutU32(&trailer, Crc32(payload));
  if (fwrite(header.data(), 1, header.size(), f) != header.size() ||
      (!payload.empty() &&
       fwrite(payload.data(), 1, payload.size(), f) != payload.size()) ||
      fwrite(trailer.data(), 1, trailer.size(), f) != trailer.size()) {
    throw PersistError("cannot write snapshot " + path +
                       ": I/O error mid-section \"" +
                       SectionName(id) + "\"");
  }
}

uint32_t ReadU32(FILE* f, const std::string& path, const char* what) {
  unsigned char b[4];
  if (fread(b, 1, 4, f) != 4) {
    throw PersistError("snapshot " + path + " is truncated (short " +
                       what + ")");
  }
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t ReadU64(FILE* f, const std::string& path, const char* what) {
  uint64_t lo = ReadU32(f, path, what);
  return lo | (static_cast<uint64_t>(ReadU32(f, path, what)) << 32);
}

}  // namespace

Snapshot CaptureSnapshot(const Engine& engine, uint64_t seed,
                         const std::string& scenario,
                         uint64_t stream_offset,
                         const SnapshotTotals& totals) {
  const EngineInfo info = engine.Describe();
  if (!info.supports_snapshot) {
    throw PersistError("engine \"" + info.canonical_spec +
                       "\" does not support snapshots "
                       "(Describe().supports_snapshot is false)");
  }
  Snapshot s;
  s.engine_spec = info.canonical_spec;
  s.seed = seed;
  s.scenario = scenario;
  s.stream_offset = stream_offset;
  s.graph = engine.host_graph();
  s.queries = engine.RegisteredQueries();
  s.totals = totals;
  return s;
}

void WriteSnapshot(const std::string& path, const Snapshot& snapshot) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw PersistError("cannot write snapshot " + path +
                       ": open failed");
  }
  try {
    std::string header(kSnapshotMagic, sizeof(kSnapshotMagic));
    PutU32(&header, kSnapshotVersion);
    PutU32(&header, kNumSections);
    if (fwrite(header.data(), 1, header.size(), f) != header.size()) {
      throw PersistError("cannot write snapshot " + path +
                         ": I/O error in header");
    }
    WriteSection(f, kSectionMeta, EncodeMeta(snapshot), path);
    WriteSection(f, kSectionGraph, EncodeGraph(snapshot.graph), path);
    WriteSection(f, kSectionQueries, EncodeQueries(snapshot.queries), path);
    WriteSection(f, kSectionTotals, EncodeTotals(snapshot.totals), path);
  } catch (...) {
    fclose(f);
    throw;
  }
  // A snapshot referenced by a manifest must actually be on stable
  // storage; fsync is part of the write, not a caller nicety.
  bool ok = fflush(f) == 0 && fsync(fileno(f)) == 0;
  ok = (fclose(f) == 0) && ok;
  if (!ok) {
    throw PersistError("cannot write snapshot " + path +
                       ": flush/close failed");
  }
}

Snapshot ReadSnapshot(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw PersistError("cannot read snapshot " + path +
                       ": no such file");
  }
  Snapshot s;
  try {
    char magic[sizeof(kSnapshotMagic)];
    if (fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
      throw PersistError("snapshot " + path +
                         " has a bad magic (not a BDSM snapshot file)");
    }
    uint32_t version = ReadU32(f, path, "version");
    if (version != kSnapshotVersion) {
      throw PersistError("snapshot " + path + " has format version " +
                         std::to_string(version) +
                         "; this build reads version " +
                         std::to_string(kSnapshotVersion));
    }
    uint32_t num_sections = ReadU32(f, path, "section count");
    if (num_sections != kNumSections) {
      throw PersistError("snapshot " + path + " declares " +
                         std::to_string(num_sections) +
                         " sections; version 1 has exactly " +
                         std::to_string(kNumSections));
    }
    // File size bounds every declared payload (hostile/corrupt sizes
    // must not reach reserve()).
    long header_end = ftell(f);
    if (header_end < 0 || fseek(f, 0, SEEK_END) != 0) {
      throw PersistError("snapshot " + path + ": seek failed");
    }
    long file_size = ftell(f);
    if (file_size < 0 || fseek(f, header_end, SEEK_SET) != 0) {
      throw PersistError("snapshot " + path + ": seek failed");
    }
    const uint32_t kExpectedOrder[kNumSections] = {
        kSectionMeta, kSectionGraph, kSectionQueries, kSectionTotals};
    for (uint32_t expected : kExpectedOrder) {
      uint32_t id = ReadU32(f, path, "section id");
      if (id != expected) {
        throw PersistError(
            "snapshot " + path + ": expected section \"" +
            SectionName(expected) + "\", found id " + std::to_string(id) +
            " (corrupt or reordered sections)");
      }
      uint64_t size = ReadU64(f, path, "section size");
      long pos = ftell(f);
      if (pos < 0 ||
          size > static_cast<uint64_t>(file_size) -
                     static_cast<uint64_t>(pos)) {
        throw PersistError("snapshot " + path + ": section \"" +
                           SectionName(id) +
                           "\" declares more bytes than the file holds "
                           "(truncated file?)");
      }
      std::string payload(size, '\0');
      if (size > 0 && fread(payload.data(), 1, size, f) != size) {
        throw PersistError("snapshot " + path + ": section \"" +
                           SectionName(id) + "\" is truncated");
      }
      uint32_t crc = ReadU32(f, path, "section CRC");
      if (crc != Crc32(payload)) {
        throw PersistError("snapshot " + path + ": section \"" +
                           SectionName(id) +
                           "\" fails its CRC check (corrupt section)");
      }
      switch (id) {
        case kSectionMeta:
          DecodeMeta(payload, &s);
          break;
        case kSectionGraph:
          s.graph = DecodeGraph(payload);
          break;
        case kSectionQueries:
          s.queries = DecodeQueries(payload);
          break;
        case kSectionTotals:
          s.totals = DecodeTotals(payload);
          break;
      }
    }
  } catch (...) {
    fclose(f);
    throw;
  }
  fclose(f);
  return s;
}

std::unique_ptr<Engine> BuildEngineFromSnapshot(
    const Snapshot& snapshot, const EngineOptions& options) {
  std::unique_ptr<Engine> engine =
      MakeEngine(snapshot.engine_spec, snapshot.graph, options);
  if (!engine->Describe().supports_snapshot) {
    throw PersistError("engine \"" + snapshot.engine_spec +
                       "\" does not support snapshot restore");
  }
  for (const RegisteredQuery& rq : snapshot.queries) {
    if (!engine->RestoreQuery(rq.query, rq.id)) {
      throw PersistError(
          "cannot restore query id " + std::to_string(rq.id) +
          " into engine \"" + snapshot.engine_spec +
          "\" (ids out of registration order — corrupt queries section?)");
    }
  }
  return engine;
}

}  // namespace bdsm::persist
