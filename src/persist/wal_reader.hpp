/// \file wal_reader.hpp
/// Incremental WAL tail reader: the one code path that turns a
/// checkpoint directory's durable batch chain into `UpdateBatch`es,
/// shared by warm restore (persist/checkpoint.hpp) and by WAL-shipping
/// replication followers (replica/follower.hpp).
///
/// A `WalReader` holds a monotone global batch cursor over one
/// checkpoint directory.  Each `Poll()` re-reads the MANIFEST (the
/// root of trust — never directory listings), reads every durable
/// batch at or past the cursor out of the manifest's segments (the
/// final segment in recover mode, so a torn final write stops the
/// tail at the last good batch instead of failing), and advances the
/// cursor past what it returned — a batch is returned exactly once,
/// no matter how segments roll, how the manifest's segment list
/// changes between polls, or how often the caller polls ("never
/// double-apply").
///
/// Generation switches and pruning: when a new checkpoint generation
/// lands (Checkpointer::Begin) or a snapshot prunes segments, the
/// manifest may stop covering the cursor — the batches between the
/// cursor and the new snapshot point no longer exist on disk.  Poll()
/// then reports `gap = true` and returns nothing: the caller must
/// resync from the manifest's snapshot (restore it, `Reset()` the
/// cursor to `snapshot_batch`) before polling again.  A cursor at or
/// past the snapshot point rides through generation switches without
/// resync — the new segments chain from where it stands.
#pragma once

#include <string>
#include <vector>

#include "graph/update_stream.hpp"
#include "persist/manifest.hpp"

namespace bdsm::persist {

class WalReader {
 public:
  /// What one Poll() observed.
  struct PollResult {
    /// Newly durable batches, global indexes [cursor, cursor + n) —
    /// the cursor has already advanced past them.
    std::vector<UpdateBatch> batches;
    /// The manifest no longer covers the cursor (generation switch or
    /// pruning moved the snapshot point past it); nothing was
    /// returned.  Resync from the snapshot, Reset(), poll again.
    bool gap = false;
    /// The final segment ended in a torn write; the tail stops at the
    /// last good batch.  A live writer may still complete/replace the
    /// segment, so this is not terminal for a follower — it is for a
    /// restore (the writer is dead by definition there).
    bool torn = false;
    /// No readable MANIFEST yet (a directory the writer has not
    /// Begin()d into).  Nothing was returned; poll again later.
    bool no_manifest = false;
    /// Provenance of the manifest this poll read (undefined when
    /// no_manifest).
    uint64_t generation = 0;
    uint64_t snapshot_batch = 0;
  };

  /// Follows `dir`'s WAL starting at global batch `from_batch`.
  /// Construction touches no files; the first Poll() does.
  explicit WalReader(std::string dir, uint64_t from_batch = 0)
      : dir_(std::move(dir)), next_batch_(from_batch) {}

  /// Reads everything durable at or past the cursor (see file
  /// comment).  Honors TraceReader's `recover_truncated` on the final
  /// segment; throws PersistError on real corruption (a short or
  /// unreadable non-final segment, a broken batch chain) — crash
  /// wreckage is reported, data loss is thrown, exactly like
  /// ReadWalTail.
  PollResult Poll();

  /// Global index of the next batch Poll() will return.
  uint64_t next_batch() const { return next_batch_; }

  /// Moves the cursor (after a snapshot resync).
  void Reset(uint64_t from_batch) { next_batch_ = from_batch; }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  uint64_t next_batch_;
};

}  // namespace bdsm::persist
