/// \file manifest.hpp
/// The checkpoint directory's root of trust: one small, CRC-sealed,
/// atomically-replaced text file naming the current snapshot and the
/// WAL segments that follow it.
///
/// Every state a restart can observe is covered by the update
/// protocol (the crash matrix of docs/PERSISTENCE.md):
///
///   1. new snapshot file written + fsynced under its own name —
///      names embed the checkpoint *generation* (bumped by every
///      Checkpointer::Begin), so a new checkpoint's artifacts never
///      collide with the previous one's;
///   2. MANIFEST written to MANIFEST.tmp, fsynced, rename(2)d over
///      MANIFEST, directory fsynced (rename is atomic on POSIX; the
///      dir sync makes it and every referenced file's dir entry
///      durable) — recovery sees either the old or the new
///      checkpoint, never a half checkpoint;
///   3. only then are superseded snapshots/segments unlinked
///      (crashing between 2 and 3 leaves unreferenced garbage, which
///      the next Begin sweeps).
///
/// Format (text, one `key value...` pair per line, value = rest of
/// line so specs may contain spaces):
///
///   BDSMMANIFEST 1
///   generation 2
///   engine_spec sharded(gamma, shards=4)
///   scenario smoke
///   seed 2024
///   snapshot snapshot-g002-0000000004.snap 4
///   wal wal-g002-0000000004.trc 4
///   crc 1a2b3c4d
///
/// The trailing `crc` line seals every preceding byte (CRC-32); a
/// manifest that fails its seal, names an unknown key, or omits a
/// required key is rejected with a PersistError naming the problem.
#pragma once

#include <string>
#include <vector>

#include "persist/wal.hpp"

namespace bdsm::persist {

inline constexpr char kManifestFileName[] = "MANIFEST";
inline constexpr uint32_t kManifestVersion = 1;

struct Manifest {
  /// Checkpoint generation: bumped by every Checkpointer::Begin on
  /// the directory and embedded in artifact file names, so writing a
  /// new checkpoint never touches the files the live manifest
  /// references (the old checkpoint stays restorable until the
  /// atomic manifest switch).
  uint64_t generation = 1;
  std::string engine_spec;    ///< canonical spec of the engine
  std::string scenario;       ///< stream provenance ("" ad hoc)
  uint64_t seed = 0;
  std::string snapshot_file;  ///< relative to the checkpoint dir
  uint64_t snapshot_batch = 0;  ///< batches the snapshot covers
  /// WAL segments holding batches >= snapshot_batch, replay order.
  std::vector<WalSegment> wal;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Atomically replaces `dir`/MANIFEST (tmp + fsync + rename).  Throws
/// PersistError on I/O failure.
void WriteManifest(const std::string& dir, const Manifest& manifest);

/// Reads and seal-checks `dir`/MANIFEST.  Throws PersistError naming
/// the failure (missing file, unsupported version, broken CRC seal,
/// malformed or missing keys).
Manifest ReadManifest(const std::string& dir);

}  // namespace bdsm::persist
