/// \file checkpoint.hpp
/// The Checkpointer: snapshot policy + WAL tee + manifest upkeep, and
/// RestoreEngine — the warm-start entry point.
///
/// One Checkpointer owns one checkpoint directory and follows one
/// engine through a stream:
///
///   persist::Checkpointer cp(dir, {.every_batches = 8});
///   cp.Begin(*engine, seed, "churn");       // base snapshot + manifest
///   for (const UpdateBatch& b : stream) {
///     BatchReport r = engine->ProcessBatch(b);
///     cp.OnBatchApplied(*engine, b, r);     // WAL tee (+ fsync),
///   }                                       // policy may snapshot
///   cp.Finish();                            // close the WAL cleanly
///
/// Recovery is the inverse, O(tail) instead of O(stream):
///
///   persist::RestoredEngine r = persist::RestoreEngine(dir);
///   // r.engine is bit-identical (gamma/CSM; match-multiset for
///   // "multi") to a cold engine that replayed r.next_batch batches;
///   // resume the stream at r.next_batch.
///
/// Drivers plug it in at the layer they own: ScenarioRunner tees via
/// RunControls::checkpointer; the sharded serving layer tees inside
/// its own batch barrier via ShardedEngine::AttachCheckpointer (all
/// shard replicas are coordinated-identical there, so one snapshot of
/// the public state covers every shard and lands in one manifest).
/// Attach at exactly one layer — two tees would log every batch twice.
#pragma once

#include <memory>
#include <string>

#include "gpusim/device_config.hpp"
#include "persist/manifest.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace bdsm::persist {

/// When to cut a snapshot (the WAL runs regardless; a snapshot just
/// moves the restore point forward and lets old segments be pruned).
struct CheckpointPolicy {
  /// Snapshot after every N applied batches (0 = only Begin's base
  /// snapshot; restore then replays the whole WAL).
  size_t every_batches = 0;
  /// ... or after every K applied update ops, whichever fires first
  /// (0 = off).  Sized for op-skewed streams (bursts) where batch
  /// count is a poor proxy for replay cost.
  size_t every_updates = 0;
  /// Unlink snapshots and fully-covered WAL segments that a newer
  /// snapshot supersedes, keeping the directory (and restore cost)
  /// proportional to the tail, not the stream.
  bool prune = true;
};

class Checkpointer {
 public:
  /// `device` supplies the tick scale for modeled-clock engines when
  /// accumulating SnapshotTotals::latency_seconds (pass the same
  /// DeviceConfig the engine was built with, i.e.
  /// EngineOptions::gamma.device).
  explicit Checkpointer(std::string dir, CheckpointPolicy policy = {},
                        WalOptions wal_options = {},
                        const DeviceConfig& device = {});
  /// Finish()es; a checkpointer dying mid-stream (no Finish) leaves a
  /// torn-tail WAL, which RestoreEngine recovers by design.
  ~Checkpointer();
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Starts a fresh checkpoint of `engine` at stream position
  /// `stream_offset`: creates the directory, writes the base snapshot
  /// + WAL under a new checkpoint *generation* (file names that never
  /// collide with the previous checkpoint's), atomically switches the
  /// manifest over, and only then sweeps the superseded artifacts —
  /// any previous checkpoint in the directory stays restorable up to
  /// the instant the new one is complete.  `totals` seeds the
  /// cumulative aggregates (non-zero when re-checkpointing a restored
  /// engine mid-stream).  Throws PersistError (engine without
  /// snapshot support, I/O failure).
  void Begin(const Engine& engine, uint64_t seed, std::string scenario,
             uint64_t stream_offset = 0, const SnapshotTotals& totals = {});

  /// Tees one applied batch into the WAL (fsync per WalOptions),
  /// accumulates `report` into the running totals, and snapshots when
  /// the policy fires.  Must be called between batches, in stream
  /// order, after the engine applied the batch.  Throws PersistError
  /// on I/O failure (the WAL can no longer honor its durability
  /// contract).
  void OnBatchApplied(const Engine& engine, const UpdateBatch& batch,
                      const BatchReport& report);

  /// Closes the current WAL segment cleanly and seals the manifest.
  /// Idempotent.  A Finish()ed checkpointer can Begin() again.
  void Finish();

  bool active() const { return wal_ != nullptr; }
  const std::string& dir() const { return dir_; }
  /// Stream index the next applied batch will be logged under.
  uint64_t next_batch() const { return next_batch_; }
  /// Cumulative aggregates since stream start (snapshot + live tail).
  const SnapshotTotals& totals() const { return totals_; }
  /// Snapshots written since Begin (the base snapshot included).
  size_t snapshots_taken() const { return snapshots_taken_; }

 private:
  void TakeSnapshot(const Engine& engine);
  void Prune();

  std::string dir_;
  CheckpointPolicy policy_;
  WalOptions wal_options_;
  DeviceConfig device_;

  uint64_t seed_ = 0;
  std::string scenario_;
  ClockDomain clock_ = ClockDomain::kHostWall;
  uint64_t next_batch_ = 0;
  size_t ops_since_snapshot_ = 0;
  size_t batches_since_snapshot_ = 0;
  size_t snapshots_taken_ = 0;
  SnapshotTotals totals_;
  Manifest manifest_;
  std::unique_ptr<WalWriter> wal_;
};

/// Everything RestoreEngine hands back.
struct RestoredEngine {
  std::unique_ptr<Engine> engine;  ///< warm-started, ready for batches
  Manifest manifest;               ///< provenance (spec/scenario/seed)
  /// First stream batch index the engine has NOT applied — resume
  /// here.  snapshot_batch + WAL batches replayed.
  uint64_t next_batch = 0;
  /// Cumulative aggregates through next_batch (snapshot totals + the
  /// replayed tail's reports).
  SnapshotTotals totals;
  uint64_t wal_batches_replayed = 0;
  /// The WAL tail ended in a torn write (crash mid-append); recovery
  /// stopped at the last durable batch, as designed.
  bool wal_tail_torn = false;
  /// The replayed tail alone: update ops it carried and its summed
  /// latency under the restored engine's clock (totals minus the
  /// snapshot's share).  The replica layer's failover model charges
  /// catch-up from these (replica/transport.hpp).
  uint64_t tail_ops = 0;
  double tail_latency_seconds = 0.0;
};

/// Warm start from a checkpoint directory: manifest -> snapshot ->
/// engine rebuild -> WAL tail replay.  Cost is O(snapshot + tail).
/// `options` rebuilds the engine (pass what the original run used;
/// inline spec options override as usual); `device` scales modeled
/// latency while re-accumulating tail totals.  Throws PersistError on
/// any unrecoverable state (no manifest, corrupt snapshot, mid-stream
/// WAL corruption, spec no longer registered).
RestoredEngine RestoreEngine(const std::string& checkpoint_dir,
                             const EngineOptions& options = {},
                             const DeviceConfig& device = {});

}  // namespace bdsm::persist
