/// \file snapshot.hpp
/// Versioned engine snapshots: the durable half of the persistence
/// subsystem (the other half is the WAL, persist/wal.hpp).
///
/// A snapshot freezes everything an engine needs for a warm start —
/// the evolving graph replica, the registered query set with its
/// public ids, the canonical EngineSpec the engine was built from,
/// stream provenance (master seed + scenario + batch offset), and the
/// cumulative BatchReport aggregates accrued so far — so recovery
/// after a restart costs `O(tail)` (snapshot load + WAL tail replay)
/// instead of `O(stream)` (full re-ingest).  The engine state that is
/// *not* serialized (GPMA segment layout, candidate tables, CSM
/// indexes) is a pure function of (graph, query, options) and is
/// rebuilt by construction; docs/PERSISTENCE.md states the exact
/// recovery invariants this buys.
///
/// Layout (version 1; all integers little-endian, doubles as IEEE-754
/// bit patterns in a u64):
///
///   offset  size  field
///        0     8  magic "BDSMSNP1"
///        8     4  version            (u32, = 1)
///       12     4  section count      (u32, = 4)
///   then per section, in fixed id order (meta, graph, queries,
///   totals):
///              4  section id         (u32)
///              8  payload size       (u64)
///              N  payload
///              4  CRC-32 of payload  (u32)
///
/// The format is exact and canonical (sorted edge order, no
/// timestamps, no map iteration), so writing the same logical state
/// twice produces byte-identical files — "snapshot round-trip
/// byte-stability" is testable.  Readers reject unknown versions,
/// unknown/missing/reordered sections, and CRC mismatches with
/// PersistError messages that name the offending part (the
/// EngineSpecError philosophy: these files travel between hosts and
/// deployments, so a helpful message beats an abort).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"

namespace bdsm::persist {

/// A corrupt, mismatched or unusable persistence artifact (user-facing
/// error, not an internal invariant — compare EngineSpecError).  The
/// message is meant to be printed verbatim by CLIs and drivers.
class PersistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kSnapshotMagic[8] = {'B', 'D', 'S', 'M',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Cumulative BatchReport aggregates across every batch applied before
/// the snapshot — the counters a restored serving process resumes its
/// SLO reporting from instead of recounting the whole stream.
struct SnapshotTotals {
  uint64_t batches = 0;            ///< batches applied
  uint64_t ops = 0;                ///< update ops submitted
  uint64_t positive_matches = 0;   ///< summed over queries and batches
  uint64_t negative_matches = 0;
  uint64_t truncated_queries = 0;  ///< query-batch pairs with partial results
  uint64_t truncated_batches = 0;  ///< batches with >= 1 truncated query
  uint64_t update_makespan_ticks = 0;  ///< summed aggregate device stats
  uint64_t match_makespan_ticks = 0;
  double latency_seconds = 0.0;    ///< summed, under the engine's clock

  friend bool operator==(const SnapshotTotals&,
                         const SnapshotTotals&) = default;
};

/// The logical state a snapshot file carries.
struct Snapshot {
  std::string engine_spec;  ///< canonical spec (Engine::Describe())
  uint64_t seed = 0;        ///< stream master seed (provenance)
  std::string scenario;     ///< scenario / generator name ("" ad hoc)
  /// Stream position: number of batches applied to the engine before
  /// this snapshot was taken.  Restore resumes at this batch index;
  /// the WAL tail holds batches [stream_offset, ...).
  uint64_t stream_offset = 0;
  LabeledGraph graph;       ///< evolving replica at stream_offset
  /// Registered queries with their public ids, in registration order.
  std::vector<RegisteredQuery> queries;
  SnapshotTotals totals;
};

/// Captures the engine's current state between batches.  Throws
/// PersistError when the engine does not support snapshots
/// (Describe().supports_snapshot == false).
Snapshot CaptureSnapshot(const Engine& engine, uint64_t seed,
                         const std::string& scenario,
                         uint64_t stream_offset,
                         const SnapshotTotals& totals = {});

/// Serializes `snapshot` to `path` (byte-stable: the same logical
/// state always produces identical bytes).  Throws PersistError on I/O
/// failure.
void WriteSnapshot(const std::string& path, const Snapshot& snapshot);

/// Parses and CRC-verifies a snapshot file.  Throws PersistError
/// naming the failure: missing file, bad magic, unknown version,
/// missing/unknown section, section CRC mismatch, or a payload the
/// declared sizes cannot hold.
Snapshot ReadSnapshot(const std::string& path);

/// Warm-starts an engine from a snapshot: builds the canonical spec
/// through the registry over the snapshot graph and re-registers every
/// query under its original public id.  The result is the engine a
/// cold replay of the first `stream_offset` batches would have
/// produced — bit-identical on matches and replica state; physical
/// device-graph layout (and therefore modeled tick stats of later
/// batches) legitimately reflects the bulk build, see
/// docs/PERSISTENCE.md.  Throws PersistError (unknown spec, id
/// restore refused) or EngineSpecError (spec no longer registered).
std::unique_ptr<Engine> BuildEngineFromSnapshot(
    const Snapshot& snapshot, const EngineOptions& options = {});

}  // namespace bdsm::persist
