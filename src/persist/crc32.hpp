/// \file crc32.hpp
/// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320): the section
/// checksum of the persistence formats (snapshot sections, manifest
/// seal).  Table-driven, byte-at-a-time — snapshot payloads are small
/// (a graph replica tops out in the tens of MB), so simplicity beats a
/// sliced implementation here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bdsm::persist {

/// CRC-32 of `n` raw bytes, continuing from `crc` (pass the previous
/// return value to checksum data in pieces; 0 starts a fresh sum).
/// Named distinctly from the string_view overload: a (pointer,
/// integer) call must never silently bind an intended `crc` argument
/// as a byte count.
uint32_t Crc32Bytes(const void* data, size_t n, uint32_t crc = 0);

/// Crc32("123456789") == 0xCBF43926, the standard check value.
inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32Bytes(s.data(), s.size(), crc);
}

}  // namespace bdsm::persist
