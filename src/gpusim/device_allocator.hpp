/// \file device_allocator.hpp
/// Global-memory allocator of the simulated device.
///
/// Tracks live and peak allocation against the configured capacity.
/// When a kernel's working set exceeds capacity the allocator does what
/// the systems the paper measures do (§IV-C, Fig. 5): it *spills* to host
/// memory, recording the host<->device traffic that then dominates BFS's
/// runtime.  Allocation never fails; exceeding capacity is an accounted
/// performance event, not an error.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "util/common.hpp"

namespace bdsm {

class DeviceAllocator {
 public:
  explicit DeviceAllocator(size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserves `bytes` of device memory.  Returns the number of bytes that
  /// did NOT fit and therefore spilled to host memory.  Thread-safe:
  /// blocks run on host threads and allocate concurrently.
  uint64_t Alloc(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    live_ += bytes;
    peak_ = std::max(peak_, live_);
    if (live_ <= capacity_) return 0;
    uint64_t over = live_ - capacity_;
    uint64_t newly_spilled = over > spilled_ ? over - spilled_ : 0;
    spilled_ = std::max(spilled_, over);
    total_spill_traffic_ += 2 * newly_spilled;  // evict + reload
    return newly_spilled;
  }

  void Free(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    GAMMA_CHECK(bytes <= live_);
    live_ -= bytes;
    if (live_ <= capacity_) spilled_ = 0;
    else spilled_ = live_ - capacity_;
  }

  uint64_t live_bytes() const { return live_; }
  uint64_t peak_bytes() const { return peak_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t total_spill_traffic() const { return total_spill_traffic_; }

  /// Device-memory occupancy in percent (can exceed 100 when spilling —
  /// Fig. 5(a) clamps at 100).
  double UsagePercent() const {
    return capacity_ == 0 ? 0.0
                          : 100.0 * static_cast<double>(live_) /
                                static_cast<double>(capacity_);
  }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t live_ = 0;
  uint64_t peak_ = 0;
  uint64_t spilled_ = 0;
  uint64_t total_spill_traffic_ = 0;
};

}  // namespace bdsm
