/// \file block.hpp
/// Block scheduler: discrete-event execution of one block's warps.
///
/// Each warp owns a local clock (ticks).  The scheduler always advances
/// the warp with the smallest clock — a standard discrete-event core that
/// models warps progressing concurrently at the rates their memory/ALU
/// charges dictate.  Work stealing (paper §V-A) happens here: the board
/// that hardware keeps in shared memory is the sibling warps' advertised
/// `EstimateRemaining()`, and scans of it are billed as shared-memory
/// traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "gpusim/device_allocator.hpp"
#include "gpusim/device_config.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/warp_task.hpp"

namespace bdsm {

/// Result of one block's execution.
struct BlockResult {
  uint64_t makespan_ticks = 0;
  uint64_t busy_ticks = 0;       ///< sum over warps
  uint64_t warp_lifetime = 0;    ///< warps_per_block * makespan
  uint64_t steal_events = 0;
  uint64_t tasks_executed = 0;
  bool timed_out = false;        ///< abandoned work on budget expiry
  DeviceStats mem;               ///< memory-side counters only
};

class BlockScheduler {
 public:
  /// `tasks` is this block's statically assigned queue (grid-stride
  /// assignment happens in Device).
  /// `launch_timer` (optional) is the whole launch's shared wall clock;
  /// with a positive cfg.host_budget_seconds, the block abandons its
  /// remaining work once that clock passes the budget.
  BlockScheduler(const DeviceConfig& cfg, uint32_t block_id,
                 DeviceAllocator* allocator,
                 std::vector<std::unique_ptr<WarpTask>> tasks,
                 const class Timer* launch_timer = nullptr);

  /// Runs the block to completion.  Deterministic for a given task list.
  BlockResult Run();

 private:
  struct WarpSlot {
    std::unique_ptr<WarpTask> task;
    uint64_t clock = 0;       ///< local time in ticks
    uint64_t busy = 0;        ///< ticks spent executing Step()
    uint64_t steps_since_poll = 0;
    std::unique_ptr<WarpContext> ctx;
  };

  // Pops the next queued task into `slot`; returns false if queue empty.
  bool PopTask(WarpSlot* slot);
  // Active stealing: `thief` pulls half the heaviest sibling's work.
  bool TrySteal(uint32_t thief);
  // Passive stealing: busy warp `donor` pushes half its work to an idle
  // sibling, if one is advertised on the board.
  void TryDonate(uint32_t donor);

  const DeviceConfig& cfg_;
  uint32_t block_id_;
  DeviceAllocator* allocator_;
  const class Timer* launch_timer_;
  SharedMemory shared_;
  std::deque<std::unique_ptr<WarpTask>> queue_;
  std::vector<WarpSlot> warps_;
  uint64_t steal_events_ = 0;
  uint64_t tasks_executed_ = 0;
};

}  // namespace bdsm
