/// \file coop_groups.hpp
/// Cooperative-group partitioning model (paper §V-C).
///
/// GPMA's stock insert path gives a whole warp to every segment; for
/// segments smaller than 32 entries most lanes idle.  GAMMA partitions a
/// warp into power-of-two thread groups sized to the segment so several
/// small segments proceed in parallel.  This header computes that
/// partition and its modeled cost; the GPMA kernels charge accordingly.
#pragma once

#include <cstdint>

namespace bdsm {

struct CoopGroupPartition {
  uint32_t group_size;  ///< threads per group (power of two, <= lanes)
  uint32_t num_groups;  ///< groups per warp = lanes / group_size
};

/// Smallest power of two >= x (x <= lanes), clamped to [1, lanes].
inline uint32_t NextPow2Clamped(uint32_t x, uint32_t lanes) {
  uint32_t p = 1;
  while (p < x && p < lanes) p <<= 1;
  return p;
}

/// Partition a warp for segments of `segment_entries` entries.
inline CoopGroupPartition PartitionForSegment(uint32_t segment_entries,
                                              uint32_t lanes = 32) {
  uint32_t gs = NextPow2Clamped(segment_entries == 0 ? 1 : segment_entries,
                                lanes);
  return CoopGroupPartition{gs, lanes / gs};
}

/// Warp-steps needed to process `num_segments` segments of
/// `segment_entries` entries each, with (paper optimization) or without
/// cooperative-group partitioning.  Without CG every segment costs at
/// least one full warp pass; with CG, `num_groups` segments are handled
/// per pass.
inline uint64_t SegmentPassSteps(uint64_t num_segments,
                                 uint32_t segment_entries, bool use_cg,
                                 uint32_t lanes = 32) {
  if (num_segments == 0) return 0;
  if (!use_cg) {
    uint64_t per_seg = (segment_entries + lanes - 1) / lanes;
    if (per_seg == 0) per_seg = 1;
    return num_segments * per_seg;
  }
  CoopGroupPartition part = PartitionForSegment(segment_entries, lanes);
  uint64_t passes = (num_segments + part.num_groups - 1) / part.num_groups;
  uint64_t per_pass = (segment_entries + part.group_size - 1) /
                      (part.group_size ? part.group_size : 1);
  if (per_pass == 0) per_pass = 1;
  return passes * per_pass;
}

}  // namespace bdsm
