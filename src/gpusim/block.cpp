#include "gpusim/block.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace bdsm {

namespace {
/// A task with fewer remaining units than this is not worth the shared
/// memory round-trips of a steal.
constexpr uint64_t kMinStealRemaining = 2;
}  // namespace

BlockScheduler::BlockScheduler(const DeviceConfig& cfg, uint32_t block_id,
                               DeviceAllocator* allocator,
                               std::vector<std::unique_ptr<WarpTask>> tasks,
                               const Timer* launch_timer)
    : cfg_(cfg),
      block_id_(block_id),
      allocator_(allocator),
      launch_timer_(launch_timer),
      shared_(cfg.shared_mem_bytes) {
  for (auto& t : tasks) queue_.push_back(std::move(t));
  warps_.resize(cfg_.warps_per_block);
  for (uint32_t w = 0; w < cfg_.warps_per_block; ++w) {
    warps_[w].ctx = std::make_unique<WarpContext>(cfg_, &shared_, allocator_,
                                                  block_id_, w);
  }
}

bool BlockScheduler::PopTask(WarpSlot* slot) {
  if (queue_.empty()) return false;
  slot->task = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool BlockScheduler::TrySteal(uint32_t thief) {
  // Scan the board: one shared-memory read per sibling warp's (csize, p)
  // summary, as in the paper's layer-by-layer inspection.
  WarpSlot& ts = warps_[thief];
  ts.ctx->ChargeShared(2 * cfg_.warps_per_block);
  ts.clock += ts.ctx->DrainTicks();

  uint32_t victim = cfg_.warps_per_block;
  uint64_t best = kMinStealRemaining - 1;
  for (uint32_t w = 0; w < cfg_.warps_per_block; ++w) {
    if (w == thief || !warps_[w].task) continue;
    uint64_t rem = warps_[w].task->EstimateRemaining();
    if (rem > best) {
      best = rem;
      victim = w;
    }
  }
  if (victim == cfg_.warps_per_block) return false;

  std::unique_ptr<WarpTask> stolen = warps_[victim].task->StealHalf();
  if (!stolen) return false;
  // Causality: the thief observed the victim's board state, so it cannot
  // be ahead of the victim when it starts on the stolen work.
  ts.clock = std::max(ts.clock, warps_[victim].clock);
  ts.task = std::move(stolen);
  ++steal_events_;
  return true;
}

void BlockScheduler::TryDonate(uint32_t donor) {
  WarpSlot& ds = warps_[donor];
  if (!ds.task || ds.task->EstimateRemaining() < kMinStealRemaining) return;
  // Scan the idle-flag array (paper: "periodically, warps with unfinished
  // workloads scan the array to find an idle warp").
  ds.ctx->ChargeShared(cfg_.warps_per_block);
  ds.clock += ds.ctx->DrainTicks();
  for (uint32_t w = 0; w < cfg_.warps_per_block; ++w) {
    if (w == donor || warps_[w].task) continue;
    std::unique_ptr<WarpTask> half = ds.task->StealHalf();
    if (!half) return;
    warps_[w].task = std::move(half);
    warps_[w].clock = std::max(warps_[w].clock, ds.clock);
    ++steal_events_;
    return;
  }
}

BlockResult BlockScheduler::Run() {
  // Initial assignment: warp w takes the w-th queued task.
  for (auto& slot : warps_) {
    if (!PopTask(&slot)) break;
  }

  Timer local_timer;
  const Timer* clock = launch_timer_ ? launch_timer_ : &local_timer;
  uint64_t steps_since_check = 0;
  bool timed_out = false;
  while (true) {
    if (cfg_.host_budget_seconds > 0 && ++steps_since_check >= 2048) {
      steps_since_check = 0;
      if (clock->ElapsedSeconds() > cfg_.host_budget_seconds) {
        timed_out = true;
        break;  // abandon remaining work
      }
    }
    // Refill idle warps from the queue, then (active policy) the board.
    for (uint32_t w = 0; w < cfg_.warps_per_block; ++w) {
      if (warps_[w].task) continue;
      if (PopTask(&warps_[w])) continue;
      if (cfg_.steal_policy == StealPolicy::kActive) TrySteal(w);
    }

    // Pick the runnable warp with the smallest local clock.
    uint32_t next = cfg_.warps_per_block;
    for (uint32_t w = 0; w < cfg_.warps_per_block; ++w) {
      if (!warps_[w].task) continue;
      if (next == cfg_.warps_per_block ||
          warps_[w].clock < warps_[next].clock) {
        next = w;
      }
    }
    if (next == cfg_.warps_per_block) break;  // all done

    WarpSlot& slot = warps_[next];
    for (uint32_t q = 0; q < cfg_.steps_per_quantum && slot.task; ++q) {
      bool more = slot.task->Step(*slot.ctx);
      uint64_t t = slot.ctx->DrainTicks();
      if (t == 0) t = cfg_.ticks_per_compute_step;  // a step costs >= 1
      slot.clock += t;
      slot.busy += t;
      ++slot.steps_since_poll;
      if (!more) {
        slot.task.reset();
        ++tasks_executed_;
      }
    }

    if (cfg_.steal_policy == StealPolicy::kPassive && slot.task &&
        slot.steps_since_poll >= cfg_.passive_poll_interval) {
      slot.steps_since_poll = 0;
      TryDonate(next);
    }
  }

  BlockResult res;
  for (const auto& slot : warps_) {
    res.makespan_ticks = std::max(res.makespan_ticks, slot.clock);
    res.busy_ticks += slot.busy;
  }
  res.warp_lifetime = res.makespan_ticks * cfg_.warps_per_block;
  res.steal_events = steal_events_;
  res.tasks_executed = tasks_executed_;
  res.timed_out = timed_out;
  for (const auto& slot : warps_) {
    res.mem.global_transactions += slot.ctx->global_transactions();
    res.mem.coalesced_words += slot.ctx->coalesced_words();
    res.mem.uncoalesced_words += slot.ctx->uncoalesced_words();
    res.mem.shared_accesses += slot.ctx->shared_accesses();
    res.mem.compute_steps += slot.ctx->compute_steps();
    res.mem.transfer_bytes += slot.ctx->transfer_bytes();
    res.mem.transfer_ticks += slot.ctx->transfer_ticks();
  }
  return res;
}

}  // namespace bdsm
