/// \file device_config.hpp
/// Configuration and statistics of the simulated GPU.
///
/// This repository reproduces a GPU paper on a machine without a GPU
/// (docs/ARCHITECTURE.md): the device below is a deterministic
/// discrete-event
/// model of the execution hierarchy GAMMA's kernels are written against —
/// SMs hosting blocks of warps, 32 SIMT lanes per warp, per-block shared
/// memory, transaction-based global memory with coalescing.  Time is
/// counted in *ticks*; kernels charge ticks through WarpContext for the
/// compute and memory work they do, and the block scheduler derives the
/// kernel makespan and per-warp utilization from those charges.
///
/// Defaults approximate the paper's RTX 3090 (83 SMs, 24 GB) scaled to
/// the synthetic datasets' size.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bdsm {

/// Work-stealing policy of §V-A.  kNone disables balancing (the "w/o ws"
/// ablation); kPassive has busy warps push work to idle ones; kActive has
/// idle warps pull half of the heaviest sibling's remaining work.
enum class StealPolicy { kNone, kPassive, kActive };

struct DeviceConfig {
  /// Streaming multiprocessors; one resident block each per wave.
  uint32_t num_sms = 83;
  /// Warps per block (the paper's |W|; shared memory is per block).
  uint32_t warps_per_block = 8;
  /// SIMT width.  Fixed at 32 in CUDA; configurable for tests.
  uint32_t lanes_per_warp = 32;
  /// Per-block shared memory budget in bytes.
  size_t shared_mem_bytes = 48 * 1024;
  /// Device (global) memory capacity in bytes.  Intentionally small by
  /// default relative to a real 3090 because the datasets are scaled;
  /// Fig. 5 lowers it further to provoke BFS spilling.
  size_t global_mem_bytes = 64ull << 20;

  /// --- Cost model (ticks) ---
  /// One global-memory transaction (a 128-byte coalesced segment).
  uint32_t ticks_per_global_transaction = 8;
  /// One shared-memory access (per warp, conflict-free).
  uint32_t ticks_per_shared_access = 1;
  /// One warp-wide ALU step (32 lanes in lockstep).
  uint32_t ticks_per_compute_step = 1;
  /// Host<->device transfer cost per 1 KiB (PCIe; dominates when BFS
  /// spills intermediate frontiers, paper Fig. 5(b)).
  uint32_t ticks_per_kib_transfer = 300;
  /// Modeled clock for converting ticks to seconds in reports (GHz).
  double clock_ghz = 1.4;

  /// Scheduling quantum: how many Step() calls a warp gets before the
  /// scheduler moves to the next warp of the block (round-robin).
  uint32_t steps_per_quantum = 1;
  /// Passive stealing: a busy warp polls the idle board every this many
  /// steps (the paper's "periodically scan the array").
  uint32_t passive_poll_interval = 16;

  StealPolicy steal_policy = StealPolicy::kActive;

  /// Host wall-clock budget for one Launch (0 = unlimited).  The
  /// simulator analogue of the paper's 30-minute query timeout: blocks
  /// abandon their remaining work once the budget expires and the launch
  /// reports timed_out.
  double host_budget_seconds = 0.0;

  double TickSeconds() const { return 1e-9 / clock_ghz; }
};

/// Aggregated execution statistics of one kernel launch.
struct DeviceStats {
  uint64_t makespan_ticks = 0;      ///< max block finish time (parallel)
  uint64_t total_busy_ticks = 0;    ///< sum over warps of busy ticks
  uint64_t total_warp_ticks = 0;    ///< sum over warps of lifetime ticks
  uint64_t global_transactions = 0; ///< global memory transactions issued
  uint64_t coalesced_words = 0;     ///< words moved in coalesced reads
  uint64_t uncoalesced_words = 0;   ///< words moved in divergent reads
  uint64_t shared_accesses = 0;     ///< shared memory accesses
  uint64_t compute_steps = 0;       ///< warp-wide ALU steps
  uint64_t steal_events = 0;        ///< successful work-steal transfers
  uint64_t tasks_executed = 0;      ///< warp tasks completed
  uint64_t transfer_bytes = 0;      ///< host<->device spill traffic
  uint64_t transfer_ticks = 0;      ///< ticks spent on that traffic
  size_t peak_device_bytes = 0;     ///< device allocator high-water mark
  bool timed_out = false;           ///< host budget expired mid-launch

  /// Field-wise equality; the persistence tests assert warm-restored
  /// engines reproduce even the modeled device stats bit for bit.
  friend bool operator==(const DeviceStats&, const DeviceStats&) = default;

  /// Fraction of warp lifetime spent doing useful work (Fig. 13 metric).
  double Utilization() const {
    return total_warp_ticks == 0
               ? 0.0
               : static_cast<double>(total_busy_ticks) /
                     static_cast<double>(total_warp_ticks);
  }

  /// Combines stats of two kernel launches that ran one after the other
  /// (makespans add).
  void MergeSequential(const DeviceStats& o) {
    uint64_t summed = makespan_ticks + o.makespan_ticks;
    Merge(o);
    makespan_ticks = summed;
  }

  void Merge(const DeviceStats& o) {
    makespan_ticks = makespan_ticks > o.makespan_ticks ? makespan_ticks
                                                       : o.makespan_ticks;
    total_busy_ticks += o.total_busy_ticks;
    total_warp_ticks += o.total_warp_ticks;
    global_transactions += o.global_transactions;
    coalesced_words += o.coalesced_words;
    uncoalesced_words += o.uncoalesced_words;
    shared_accesses += o.shared_accesses;
    compute_steps += o.compute_steps;
    steal_events += o.steal_events;
    tasks_executed += o.tasks_executed;
    transfer_bytes += o.transfer_bytes;
    transfer_ticks += o.transfer_ticks;
    peak_device_bytes = peak_device_bytes > o.peak_device_bytes
                            ? peak_device_bytes
                            : o.peak_device_bytes;
    timed_out = timed_out || o.timed_out;
  }
};

}  // namespace bdsm
