/// \file warp_task.hpp
/// The unit of work a warp executes, and the context through which it
/// charges simulated time.
///
/// A WarpTask is a *steppable state machine*: Step() advances a bounded
/// amount of work (one DFS candidate expansion, one GPMA segment merge,
/// ...) and returns whether work remains.  Writing kernels this way is
/// what hand-written warp-centric CUDA looks like after lowering (a loop
/// over an explicit stack), and it is what lets the block scheduler
/// interleave warps deterministically — the property work stealing,
/// utilization measurement, and the unit tests all rely on.
#pragma once

#include <cstdint>
#include <memory>

#include "gpusim/device_config.hpp"
#include "gpusim/shared_memory.hpp"

namespace bdsm {

class DeviceAllocator;

/// Handed to WarpTask::Step; the only way kernels interact with the
/// simulated machine.
class WarpContext {
 public:
  WarpContext(const DeviceConfig& cfg, SharedMemory* shared,
              DeviceAllocator* allocator, uint32_t block_id,
              uint32_t warp_id)
      : cfg_(cfg),
        shared_(shared),
        allocator_(allocator),
        block_id_(block_id),
        warp_id_(warp_id) {}

  uint32_t block_id() const { return block_id_; }
  uint32_t warp_id() const { return warp_id_; }
  uint32_t lanes() const { return cfg_.lanes_per_warp; }
  const DeviceConfig& config() const { return cfg_; }

  SharedMemory& shared() { return *shared_; }
  DeviceAllocator& allocator() { return *allocator_; }

  /// `ops` scalar operations executed cooperatively by the warp's lanes
  /// (SIMT: 32 at a time).
  void ChargeCompute(uint64_t ops) {
    uint64_t steps = (ops + lanes() - 1) / lanes();
    ticks_ += steps * cfg_.ticks_per_compute_step;
    compute_steps_ += steps;
  }

  /// Global-memory read/write of `words` 4-byte words.  Coalesced access
  /// moves 32 words per transaction (one 128 B segment); divergent access
  /// needs a transaction per word — the 32x penalty the paper's
  /// warp-centric layout exists to avoid.
  void ChargeGlobal(uint64_t words, bool coalesced) {
    uint64_t transactions = coalesced ? (words + 31) / 32 : words;
    ticks_ += transactions * cfg_.ticks_per_global_transaction;
    global_transactions_ += transactions;
    (coalesced ? coalesced_words_ : uncoalesced_words_) += words;
  }

  /// Shared-memory access of `words` words (bank-conflict-free model).
  void ChargeShared(uint64_t words) {
    uint64_t accesses = (words + lanes() - 1) / lanes();
    ticks_ += accesses * cfg_.ticks_per_shared_access;
    shared_accesses_ += accesses;
  }

  /// Host<->device transfer (spills); billed to the whole kernel, not a
  /// single warp, but accounted here for simplicity of attribution.
  void ChargeTransfer(uint64_t bytes) {
    uint64_t t = (bytes + 1023) / 1024 * cfg_.ticks_per_kib_transfer;
    ticks_ += t;
    transfer_ticks_ += t;
    transfer_bytes_ += bytes;
  }

  /// Ticks accumulated by the current Step() call; drained by scheduler.
  uint64_t DrainTicks() {
    uint64_t t = ticks_;
    ticks_ = 0;
    return t;
  }

  // Raw counter access for the scheduler's stats roll-up.
  uint64_t global_transactions() const { return global_transactions_; }
  uint64_t coalesced_words() const { return coalesced_words_; }
  uint64_t uncoalesced_words() const { return uncoalesced_words_; }
  uint64_t shared_accesses() const { return shared_accesses_; }
  uint64_t compute_steps() const { return compute_steps_; }
  uint64_t transfer_bytes() const { return transfer_bytes_; }
  uint64_t transfer_ticks() const { return transfer_ticks_; }

 private:
  const DeviceConfig& cfg_;
  SharedMemory* shared_;
  DeviceAllocator* allocator_;
  uint32_t block_id_;
  uint32_t warp_id_;

  uint64_t ticks_ = 0;
  uint64_t global_transactions_ = 0;
  uint64_t coalesced_words_ = 0;
  uint64_t uncoalesced_words_ = 0;
  uint64_t shared_accesses_ = 0;
  uint64_t compute_steps_ = 0;
  uint64_t transfer_bytes_ = 0;
  uint64_t transfer_ticks_ = 0;
};

/// One warp's unit of work (for GAMMA: the matches of one updated edge).
class WarpTask {
 public:
  virtual ~WarpTask() = default;

  /// Advances a bounded amount of work.  Returns true while work remains.
  virtual bool Step(WarpContext& ctx) = 0;

  /// Work-stealing support.  EstimateRemaining is the warp's advertised
  /// workload on the shared-memory board (the paper's per-layer csize/p
  /// scan); StealHalf splits off roughly half the remaining work into a
  /// new task, or returns nullptr when the task is not splittable.
  virtual uint64_t EstimateRemaining() const { return 0; }
  virtual std::unique_ptr<WarpTask> StealHalf() { return nullptr; }
};

}  // namespace bdsm
