/// \file shared_memory.hpp
/// Per-block shared-memory arena of the simulated device.
///
/// Kernels obtain typed slices of the block's shared memory exactly like
/// `__shared__` arrays in CUDA; allocation beyond the configured budget
/// aborts, which is the moral equivalent of a CUDA compile-time error.
/// The work-stealing board (§V-A) and GPMA's cached tree layers (§V-C)
/// live here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace bdsm {

class SharedMemory {
 public:
  explicit SharedMemory(size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Allocates `count` default-initialized Ts; aborts when the block's
  /// budget is exhausted (kernels must size their shared state to fit).
  template <typename T>
  T* Alloc(size_t count) {
    size_t bytes = count * sizeof(T);
    // Bump-align to 8 so mixed-type allocations stay aligned.
    used_ = (used_ + 7) & ~size_t{7};
    GAMMA_CHECK_MSG(used_ + bytes <= capacity_,
                    "shared memory budget exceeded");
    arenas_.emplace_back(bytes);
    T* p = reinterpret_cast<T*>(arenas_.back().data());
    for (size_t i = 0; i < count; ++i) new (p + i) T{};
    used_ += bytes;
    return p;
  }

  size_t used() const { return used_; }
  size_t capacity() const { return capacity_; }

  /// Frees everything (block re-launch between kernels).
  void Reset() {
    arenas_.clear();
    used_ = 0;
  }

 private:
  size_t capacity_;
  size_t used_ = 0;
  std::vector<std::vector<std::byte>> arenas_;
};

}  // namespace bdsm
