/// \file warp_ops.hpp
/// Warp-level cooperative primitives of the simulated device — the
/// `__ballot_sync` / `__shfl_sync` / scan / parallel-binary-search
/// toolbox warp-centric CUDA kernels are written with.  Each primitive
/// computes its result on the host and charges the device cost the
/// hardware equivalent would incur, so kernels using them stay honest
/// in the discrete-event model.
///
/// The star primitive is the sorted-set intersection: the paper's
/// footnote 1 reports set intersections at 58.2% of subgraph-matching
/// runtime, and §IV-C implements GenCandidates "by parallel binary
/// search" — IntersectSorted is exactly that (lanes take elements of
/// the smaller list and binary-search the larger one in lockstep).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/warp_task.hpp"

namespace bdsm {

class WarpOps {
 public:
  /// __ballot_sync: every lane contributes a predicate bit.  One warp
  /// step; returns the 32-bit (lane-count-bit) mask.
  /// (`std::vector<bool>` by reference: its proxy iterators cannot form
  /// a span.)
  static uint32_t Ballot(WarpContext& ctx, const std::vector<bool>& lanes) {
    ctx.ChargeCompute(ctx.lanes());
    uint32_t mask = 0;
    for (size_t i = 0; i < lanes.size() && i < 32; ++i) {
      if (lanes[i]) mask |= (1u << i);
    }
    return mask;
  }

  /// __shfl_sync broadcast: one register exchange, one step.
  template <typename T>
  static T Shuffle(WarpContext& ctx, const T& value) {
    ctx.ChargeCompute(ctx.lanes());
    return value;
  }

  /// Warp-inclusive prefix sum (Hillis-Steele): log2(lanes) steps.
  static std::vector<uint32_t> InclusiveScan(
      WarpContext& ctx, std::span<const uint32_t> values) {
    uint32_t steps = 0;
    for (uint32_t w = 1; w < ctx.lanes(); w <<= 1) ++steps;
    ctx.ChargeCompute(static_cast<uint64_t>(steps) * ctx.lanes());
    std::vector<uint32_t> out(values.begin(), values.end());
    for (size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
    return out;
  }

  /// Cost (in scalar ops) of the warp-parallel binary-search
  /// intersection of an `n`-element probe set against a sorted list of
  /// `m` elements: each probe costs ~log2(m), lanes run 32 at a time
  /// (ChargeCompute divides by the SIMT width).
  static uint64_t IntersectOps(uint64_t n, uint64_t m) {
    uint64_t logm = 1;
    while ((1ull << logm) < std::max<uint64_t>(m, 2)) ++logm;
    return n * logm;
  }

  /// Sorted-set intersection via parallel binary search (probes from
  /// the smaller side).  Charges compute per IntersectOps plus the
  /// divergent global reads of the probed list.
  static std::vector<VertexId> IntersectSorted(
      WarpContext& ctx, std::span<const VertexId> a,
      std::span<const VertexId> b) {
    std::span<const VertexId> probe = a.size() <= b.size() ? a : b;
    std::span<const VertexId> table = a.size() <= b.size() ? b : a;
    ctx.ChargeCompute(IntersectOps(probe.size(), table.size()));
    ctx.ChargeGlobal(probe.size(), /*coalesced=*/true);
    ctx.ChargeGlobal(probe.size(), /*coalesced=*/false);  // tree probes
    std::vector<VertexId> out;
    for (VertexId x : probe) {
      if (std::binary_search(table.begin(), table.end(), x)) {
        out.push_back(x);
      }
    }
    return out;
  }
};

}  // namespace bdsm
