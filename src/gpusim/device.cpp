#include "gpusim/device.hpp"

#include <atomic>
#include <thread>

#include "util/timer.hpp"

namespace bdsm {

Device::Device(DeviceConfig cfg, uint32_t host_threads)
    : cfg_(cfg), allocator_(cfg.global_mem_bytes) {
  host_threads_ = host_threads != 0
                      ? host_threads
                      : std::max(1u, std::thread::hardware_concurrency());
}

DeviceStats Device::Launch(std::vector<std::unique_ptr<WarpTask>> tasks) {
  DeviceStats total;
  if (tasks.empty()) return total;

  // One wave of resident blocks; grids larger than the device are folded
  // into the per-block queues (persistent-thread style), which is how the
  // makespan accounts for multi-wave grids too.
  const uint64_t warps_needed =
      (tasks.size() + cfg_.warps_per_block - 1) / cfg_.warps_per_block;
  const uint32_t num_blocks = static_cast<uint32_t>(
      std::min<uint64_t>(cfg_.num_sms, warps_needed));

  // Static grid-stride assignment keeps every block's queue — and hence
  // the whole simulation — deterministic under host-thread parallelism.
  std::vector<std::vector<std::unique_ptr<WarpTask>>> per_block(num_blocks);
  for (size_t i = 0; i < tasks.size(); ++i) {
    per_block[i % num_blocks].push_back(std::move(tasks[i]));
  }

  std::vector<BlockResult> results(num_blocks);
  std::atomic<uint32_t> next_block{0};
  Timer launch_timer;
  auto worker = [&]() {
    while (true) {
      uint32_t b = next_block.fetch_add(1);
      if (b >= num_blocks) return;
      BlockScheduler sched(cfg_, b, &allocator_, std::move(per_block[b]),
                           &launch_timer);
      results[b] = sched.Run();
    }
  };

  uint32_t nthreads = std::min<uint32_t>(host_threads_, num_blocks);
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (uint32_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  for (const BlockResult& r : results) {
    total.timed_out = total.timed_out || r.timed_out;
    total.makespan_ticks = std::max(total.makespan_ticks, r.makespan_ticks);
    total.total_busy_ticks += r.busy_ticks;
    total.steal_events += r.steal_events;
    total.tasks_executed += r.tasks_executed;
    total.global_transactions += r.mem.global_transactions;
    total.coalesced_words += r.mem.coalesced_words;
    total.uncoalesced_words += r.mem.uncoalesced_words;
    total.shared_accesses += r.mem.shared_accesses;
    total.compute_steps += r.mem.compute_steps;
    total.transfer_bytes += r.mem.transfer_bytes;
    total.transfer_ticks += r.mem.transfer_ticks;
  }
  // Warp lifetime is uniform across the launch: every warp of every
  // resident block lives until the last block finishes.
  total.total_warp_ticks =
      total.makespan_ticks * cfg_.warps_per_block * num_blocks;
  total.peak_device_bytes = allocator_.peak_bytes();
  return total;
}

}  // namespace bdsm
