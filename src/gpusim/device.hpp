/// \file device.hpp
/// The simulated GPU: grid-level task distribution over blocks/SMs.
///
/// Launch() takes a flat list of warp tasks (for GAMMA: one per updated
/// edge), statically grid-strides them over blocks, executes every block
/// to completion (blocks are independent, so host threads may run them in
/// parallel without affecting the simulated result), and reports the
/// kernel makespan as the maximum block finish time — all resident blocks
/// start together, which models a grid that fits the device in one wave.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/block.hpp"
#include "gpusim/device_allocator.hpp"
#include "gpusim/device_config.hpp"
#include "gpusim/warp_task.hpp"

namespace bdsm {

class Device {
 public:
  explicit Device(DeviceConfig cfg = {}, uint32_t host_threads = 0);

  const DeviceConfig& config() const { return cfg_; }
  DeviceAllocator& allocator() { return allocator_; }

  /// Executes the tasks as one kernel launch and returns its statistics.
  /// Deterministic for a given (cfg, tasks) regardless of host threads.
  DeviceStats Launch(std::vector<std::unique_ptr<WarpTask>> tasks);

  /// Modeled wall-clock duration of a launch with the given stats.
  double ModeledSeconds(const DeviceStats& stats) const {
    return static_cast<double>(stats.makespan_ticks) * cfg_.TickSeconds();
  }

 private:
  DeviceConfig cfg_;
  DeviceAllocator allocator_;
  uint32_t host_threads_;
};

}  // namespace bdsm
