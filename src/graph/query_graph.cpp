#include "graph/query_graph.hpp"

#include <algorithm>
#include <sstream>

namespace bdsm {

QueryGraph::QueryGraph(std::vector<Label> vertex_labels)
    : vlabels_(std::move(vertex_labels)), neighbors_(vlabels_.size()) {
  GAMMA_CHECK_MSG(vlabels_.size() <= kMaxQueryVertices,
                  "query graph too large");
}

bool QueryGraph::AddEdge(VertexId u1, VertexId u2, Label elabel) {
  if (u1 == u2 || u1 >= NumVertices() || u2 >= NumVertices()) return false;
  if (HasEdge(u1, u2)) return false;
  edges_.push_back(QueryEdge{u1, u2, elabel});
  adj_mask_[u1] |= static_cast<uint16_t>(1u << u2);
  adj_mask_[u2] |= static_cast<uint16_t>(1u << u1);
  neighbors_[u1].push_back(u2);
  neighbors_[u2].push_back(u1);
  return true;
}

Label QueryGraph::EdgeLabelBetween(VertexId u1, VertexId u2) const {
  for (const QueryEdge& e : edges_) {
    if ((e.u1 == u1 && e.u2 == u2) || (e.u1 == u2 && e.u2 == u1)) {
      return e.elabel;
    }
  }
  return kNoLabel;
}

bool QueryGraph::IsConnected() const {
  if (NumVertices() == 0) return false;
  uint16_t visited = 1;  // start from vertex 0
  uint16_t frontier = 1;
  while (frontier != 0) {
    uint16_t next = 0;
    for (VertexId u = 0; u < NumVertices(); ++u) {
      if ((frontier >> u) & 1u) next |= adj_mask_[u];
    }
    frontier = next & static_cast<uint16_t>(~visited);
    visited |= next;
  }
  uint16_t all = static_cast<uint16_t>((1u << NumVertices()) - 1);
  return (visited & all) == all;
}

QueryGraph::StructureClass QueryGraph::Classify() const {
  if (IsTree()) return StructureClass::kTree;
  return AverageDegree() >= 3.0 ? StructureClass::kDense
                                : StructureClass::kSparse;
}

std::vector<Label> QueryGraph::UsedVertexLabels() const {
  std::vector<Label> labels = vlabels_;
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

std::string QueryGraph::ToString() const {
  std::ostringstream os;
  os << "Q(|V|=" << NumVertices() << ", |E|=" << NumEdges() << "; ";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << edges_[i].u1 << "," << edges_[i].u2 << ")";
  }
  os << ")";
  return os.str();
}

const char* ToString(QueryGraph::StructureClass c) {
  switch (c) {
    case QueryGraph::StructureClass::kDense: return "Dense";
    case QueryGraph::StructureClass::kSparse: return "Sparse";
    case QueryGraph::StructureClass::kTree: return "Tree";
  }
  return "?";
}

}  // namespace bdsm
