#include "graph/graph_generator.hpp"

#include <algorithm>

namespace bdsm {

LabeledGraph GeneratePowerLawGraph(const GeneratorParams& params) {
  Rng rng(params.seed);
  const size_t n = params.num_vertices;
  GAMMA_CHECK(n >= 2);

  // Zipf-distributed vertex labels (rank 0 most common), shuffled over
  // label ids so that label id is not correlated with frequency rank.
  std::vector<Label> label_of_rank(params.vertex_labels);
  for (size_t i = 0; i < label_of_rank.size(); ++i) {
    label_of_rank[i] = static_cast<Label>(i);
  }
  for (size_t i = label_of_rank.size(); i > 1; --i) {
    std::swap(label_of_rank[i - 1], label_of_rank[rng.Uniform(i)]);
  }
  ZipfSampler vlabel_zipf(params.vertex_labels,
                          std::max(0.0, params.vertex_label_skew));
  std::vector<Label> vlabels(n);
  for (size_t v = 0; v < n; ++v) {
    vlabels[v] = params.vertex_labels <= 1
                     ? 0
                     : label_of_rank[vlabel_zipf.Sample(rng)];
  }
  LabeledGraph g(std::move(vlabels));

  const bool labeled_edges = params.edge_labels > 1;
  ZipfSampler elabel_zipf(std::max<size_t>(params.edge_labels, 1),
                          std::max(0.0, params.edge_label_skew));
  auto sample_elabel = [&]() -> Label {
    return labeled_edges ? static_cast<Label>(elabel_zipf.Sample(rng))
                         : kNoLabel;
  };

  // Endpoint list doubles as the degree-proportional sampling urn.
  std::vector<VertexId> urn;
  urn.reserve(static_cast<size_t>(params.avg_degree) * n + 16);

  // Seed with a small path so the urn is never empty.
  g.InsertEdge(0, 1, sample_elabel());
  urn.push_back(0);
  urn.push_back(1);

  const double edges_per_vertex = std::max(1.0, params.avg_degree / 2.0);
  const double core_edges_per_vertex =
      std::max(1.0, params.dense_core_avg_degree / 2.0);
  for (VertexId v = 2; v < n; ++v) {
    // Attach floor or ceil of edges_per_vertex edges, dithered so the
    // expected total matches the target.
    double target_rate = v < params.dense_core_vertices + 2
                             ? core_edges_per_vertex
                             : edges_per_vertex;
    size_t m = static_cast<size_t>(target_rate);
    if (rng.Chance(target_rate - static_cast<double>(m))) ++m;
    m = std::max<size_t>(m, 1);
    size_t added = 0, attempts = 0;
    VertexId last_target = kInvalidVertex;
    while (added < m && attempts++ < m * 16) {
      VertexId target = urn[rng.PickIndex(urn)];
      // Triadic closure: sometimes attach to a neighbor of the previous
      // target, closing a triangle (clustered pockets).
      if (last_target != kInvalidVertex &&
          rng.Chance(params.triangle_prob)) {
        auto nbrs = g.Neighbors(last_target);
        if (!nbrs.empty()) target = nbrs[rng.Uniform(nbrs.size())].v;
      }
      if (target == v || g.HasEdge(v, target)) continue;
      if (g.InsertEdge(v, target, sample_elabel())) {
        urn.push_back(v);
        urn.push_back(target);
        ++added;
        last_target = target;
      }
    }
    if (added == 0) {
      // Guarantee connectivity: fall back to a uniform existing vertex.
      VertexId target = static_cast<VertexId>(rng.Uniform(v));
      if (g.InsertEdge(v, target, sample_elabel())) {
        urn.push_back(v);
        urn.push_back(target);
      }
    }
  }
  return g;
}

LabeledGraph GenerateUniformGraph(size_t num_vertices, size_t num_edges,
                                  size_t vertex_labels, size_t edge_labels,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> vlabels(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    vlabels[v] = vertex_labels <= 1
                     ? 0
                     : static_cast<Label>(rng.Uniform(vertex_labels));
  }
  LabeledGraph g(std::move(vlabels));
  const bool labeled_edges = edge_labels > 1;
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 32 + 1024;
  while (g.NumEdges() < num_edges && attempts++ < max_attempts) {
    VertexId a = static_cast<VertexId>(rng.Uniform(num_vertices));
    VertexId b = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (a == b) continue;
    Label el = labeled_edges ? static_cast<Label>(rng.Uniform(edge_labels))
                             : kNoLabel;
    g.InsertEdge(a, b, el);
  }
  return g;
}

}  // namespace bdsm
