/// \file csr.hpp
/// Immutable compressed-sparse-row snapshot of a labeled graph.
///
/// The CPU baselines (src/baselines) scan adjacency heavily; a CSR
/// snapshot gives them the flat, cache-friendly layout their original
/// implementations use, keeping the CPU-vs-GPU comparison fair.
#pragma once

#include <span>
#include <vector>

#include "graph/labeled_graph.hpp"

namespace bdsm {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshots g.  O(|V| + |E|).
  explicit CsrGraph(const LabeledGraph& g);

  size_t NumVertices() const { return vlabels_.size(); }
  size_t NumEdges() const { return nbrs_.size() / 2; }

  Label VertexLabel(VertexId v) const { return vlabels_[v]; }
  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted neighbor ids of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {nbrs_.data() + offsets_[v], nbrs_.data() + offsets_[v + 1]};
  }
  /// Edge labels aligned with Neighbors(v).
  std::span<const Label> NeighborEdgeLabels(VertexId v) const {
    return {elabels_.data() + offsets_[v], elabels_.data() + offsets_[v + 1]};
  }

  bool HasEdge(VertexId u, VertexId v) const;
  Label EdgeLabel(VertexId u, VertexId v) const;

 private:
  std::vector<size_t> offsets_;
  std::vector<VertexId> nbrs_;
  std::vector<Label> elabels_;
  std::vector<Label> vlabels_;
};

}  // namespace bdsm
