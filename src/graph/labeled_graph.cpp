#include "graph/labeled_graph.hpp"

#include <algorithm>

namespace bdsm {

VertexId LabeledGraph::AddVertex(Label label) {
  vlabels_.push_back(label);
  adj_.emplace_back();
  return static_cast<VertexId>(vlabels_.size() - 1);
}

size_t LabeledGraph::FindSlot(VertexId u, VertexId v) const {
  const auto& list = adj_[u];
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const Neighbor& n, VertexId x) { return n.v < x; });
  if (it != list.end() && it->v == v) {
    return static_cast<size_t>(it - list.begin());
  }
  return list.size();
}

bool LabeledGraph::InsertEdge(VertexId u, VertexId v, Label elabel) {
  if (u == v || u >= NumVertices() || v >= NumVertices()) return false;
  if (HasEdge(u, v)) return false;
  auto insert_into = [&](VertexId a, VertexId b) {
    auto& list = adj_[a];
    auto it = std::lower_bound(
        list.begin(), list.end(), b,
        [](const Neighbor& n, VertexId x) { return n.v < x; });
    list.insert(it, Neighbor{b, elabel});
  };
  insert_into(u, v);
  insert_into(v, u);
  ++num_edges_;
  return true;
}

bool LabeledGraph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  size_t su = FindSlot(u, v);
  if (su == adj_[u].size()) return false;
  size_t sv = FindSlot(v, u);
  GAMMA_CHECK(sv != adj_[v].size());
  adj_[u].erase(adj_[u].begin() + static_cast<ptrdiff_t>(su));
  adj_[v].erase(adj_[v].begin() + static_cast<ptrdiff_t>(sv));
  --num_edges_;
  return true;
}

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  // Search the shorter list.
  VertexId a = u, b = v;
  if (adj_[a].size() > adj_[b].size()) std::swap(a, b);
  return FindSlot(a, b) != adj_[a].size();
}

Label LabeledGraph::EdgeLabel(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return kNoLabel;
  size_t s = FindSlot(u, v);
  if (s == adj_[u].size()) return kNoLabel;
  return adj_[u][s].elabel;
}

size_t LabeledGraph::CountNeighborsWithLabel(VertexId v, Label l) const {
  size_t n = 0;
  for (const Neighbor& nb : adj_[v]) {
    if (vlabels_[nb.v] == l) ++n;
  }
  return n;
}

size_t LabeledGraph::VertexLabelAlphabet() const {
  Label mx = 0;
  bool any = false;
  for (Label l : vlabels_) {
    if (l != kNoLabel) {
      mx = std::max(mx, l);
      any = true;
    }
  }
  return any ? static_cast<size_t>(mx) + 1 : 0;
}

size_t LabeledGraph::EdgeLabelAlphabet() const {
  Label mx = 0;
  bool any = false;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const Neighbor& nb : adj_[v]) {
      if (nb.elabel != kNoLabel) {
        mx = std::max(mx, nb.elabel);
        any = true;
      }
    }
  }
  return any ? static_cast<size_t>(mx) + 1 : 0;
}

std::vector<Edge> LabeledGraph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const Neighbor& nb : adj_[v]) {
      if (v < nb.v) edges.emplace_back(v, nb.v);
    }
  }
  return edges;
}

}  // namespace bdsm
