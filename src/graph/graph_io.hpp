/// \file graph_io.hpp
/// Plain-text graph serialization in the format common to the CSM
/// literature (and to the paper's baselines' repositories):
///
///   `t <num_vertices> <num_edges>`
///   `v <id> <label> [degree]`        (degree optional, ignored on load)
///   `e <u> <v> [edge_label]`
///
/// Lets users run GAMMA on their own graphs and lets tests round-trip.
#pragma once

#include <string>

#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"

namespace bdsm {

/// Writes g to `path`.  Aborts on I/O failure (research tool semantics).
void SaveGraph(const LabeledGraph& g, const std::string& path);

/// Reads a graph from `path`.  Aborts on parse failure.
LabeledGraph LoadGraph(const std::string& path);

/// Query graphs use the identical format.
void SaveQuery(const QueryGraph& q, const std::string& path);
QueryGraph LoadQuery(const std::string& path);

}  // namespace bdsm
