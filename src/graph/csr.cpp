#include "graph/csr.hpp"

#include <algorithm>

namespace bdsm {

CsrGraph::CsrGraph(const LabeledGraph& g) {
  const size_t n = g.NumVertices();
  vlabels_ = g.vertex_labels();
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.Degree(v);
  }
  nbrs_.resize(offsets_[n]);
  elabels_.resize(offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    size_t off = offsets_[v];
    for (const Neighbor& nb : g.Neighbors(v)) {
      nbrs_[off] = nb.v;
      elabels_[off] = nb.elabel;
      ++off;
    }
  }
}

bool CsrGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Label CsrGraph::EdgeLabel(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kNoLabel;
  return elabels_[offsets_[u] + static_cast<size_t>(it - nbrs.begin())];
}

}  // namespace bdsm
