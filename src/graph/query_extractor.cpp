#include "graph/query_extractor.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/kcore.hpp"

namespace bdsm {

const std::vector<uint32_t>& QueryExtractor::CoreCache() {
  if (core_cache_.empty() && g_.NumVertices() > 0) {
    core_cache_ = CoreNumbers(g_);
    uint32_t best = 0;
    for (uint32_t c : core_cache_) best = std::max(best, c);
    // Pool of vertices in the densest available cores (>= best-1 so the
    // pool is not a handful of hubs only).
    uint32_t floor_core = best > 1 ? best - 1 : best;
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (core_cache_[v] >= floor_core) dense_pool_.push_back(v);
    }
  }
  return core_cache_;
}

std::optional<std::vector<VertexId>> QueryExtractor::SampleConnectedVertices(
    size_t n, bool dense_bias) {
  const size_t nv = g_.NumVertices();
  if (nv < n) return std::nullopt;
  if (dense_bias) CoreCache();
  for (size_t attempt = 0; attempt < 32; ++attempt) {
    VertexId start;
    if (dense_bias && !dense_pool_.empty()) {
      start = dense_pool_[rng_.PickIndex(dense_pool_)];
    } else {
      start = static_cast<VertexId>(rng_.Uniform(nv));
    }
    if (g_.Degree(start) == 0) continue;
    std::vector<VertexId> picked{start};
    std::unordered_set<VertexId> in_set{start};
    size_t stall = 0;
    while (picked.size() < n && stall < 64 * n) {
      VertexId from = picked[rng_.PickIndex(picked)];
      auto nbrs = g_.Neighbors(from);
      if (nbrs.empty()) {
        ++stall;
        continue;
      }
      VertexId next = kInvalidVertex;
      if (dense_bias) {
        // Examine a handful of random neighbors; keep the one with the
        // most links back into the sample (greedy densification).
        size_t best_links = 0;
        for (size_t trial = 0; trial < std::min<size_t>(nbrs.size(), 8);
             ++trial) {
          VertexId cand = nbrs[rng_.Uniform(nbrs.size())].v;
          if (in_set.count(cand)) continue;
          size_t links = 0;
          for (VertexId p : picked) {
            if (g_.HasEdge(cand, p)) ++links;
          }
          if (next == kInvalidVertex || links > best_links) {
            next = cand;
            best_links = links;
          }
        }
      } else {
        VertexId cand = nbrs[rng_.Uniform(nbrs.size())].v;
        if (!in_set.count(cand)) next = cand;
      }
      if (next == kInvalidVertex) {
        ++stall;
        continue;
      }
      picked.push_back(next);
      in_set.insert(next);
    }
    if (picked.size() == n) return picked;
  }
  return std::nullopt;
}

std::optional<QueryGraph> QueryExtractor::Extract(
    size_t num_vertices, QueryGraph::StructureClass cls) {
  const bool dense_bias = cls == QueryGraph::StructureClass::kDense;
  for (size_t attempt = 0; attempt < 200; ++attempt) {
    auto verts_opt = SampleConnectedVertices(num_vertices, dense_bias);
    if (!verts_opt) return std::nullopt;
    const std::vector<VertexId>& verts = *verts_opt;

    std::unordered_map<VertexId, VertexId> remap;
    std::vector<Label> labels(num_vertices);
    for (size_t i = 0; i < num_vertices; ++i) {
      remap[verts[i]] = static_cast<VertexId>(i);
      labels[i] = g_.VertexLabel(verts[i]);
    }

    // Induced edges of the sample.
    struct IndEdge {
      VertexId a, b;
      Label el;
    };
    std::vector<IndEdge> induced;
    for (size_t i = 0; i < num_vertices; ++i) {
      for (const Neighbor& nb : g_.Neighbors(verts[i])) {
        auto it = remap.find(nb.v);
        if (it != remap.end() && static_cast<VertexId>(i) < it->second) {
          induced.push_back(
              IndEdge{static_cast<VertexId>(i), it->second, nb.elabel});
        }
      }
    }

    QueryGraph q(labels);
    if (cls == QueryGraph::StructureClass::kTree) {
      // Random spanning tree of the induced subgraph (Kruskal over a
      // shuffled edge list).
      for (size_t i = induced.size(); i > 1; --i) {
        std::swap(induced[i - 1], induced[rng_.Uniform(i)]);
      }
      std::vector<VertexId> parent(num_vertices);
      for (size_t i = 0; i < num_vertices; ++i) {
        parent[i] = static_cast<VertexId>(i);
      }
      auto find = [&](VertexId x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (const IndEdge& e : induced) {
        VertexId ra = find(e.a), rb = find(e.b);
        if (ra != rb) {
          parent[ra] = rb;
          q.AddEdge(e.a, e.b, e.el);
        }
      }
      if (q.NumEdges() == num_vertices - 1) return q;
      continue;  // induced sample was not connected enough
    }

    // Dense/Sparse: keep the full induced subgraph; for Sparse thin it
    // out to below average degree 3 while preserving connectivity.
    for (const IndEdge& e : induced) q.AddEdge(e.a, e.b, e.el);
    if (!q.IsConnected()) continue;

    if (cls == QueryGraph::StructureClass::kDense) {
      if (q.Classify() == QueryGraph::StructureClass::kDense) return q;
      continue;
    }

    // Sparse: remove random non-bridge edges until davg < 3, keeping at
    // least |V| edges so it does not degenerate into a tree.
    QueryGraph sparse = q;
    size_t guard = 0;
    while (sparse.AverageDegree() >= 3.0 && guard++ < 64) {
      // Rebuild with one random edge dropped, if connectivity survives.
      std::vector<QueryEdge> es = sparse.edges();
      size_t drop = rng_.PickIndex(es);
      QueryGraph trial(labels);
      for (size_t i = 0; i < es.size(); ++i) {
        if (i != drop) trial.AddEdge(es[i].u1, es[i].u2, es[i].elabel);
      }
      if (trial.IsConnected() && trial.NumEdges() >= num_vertices) {
        sparse = trial;
      }
    }
    if (sparse.Classify() == QueryGraph::StructureClass::kSparse) {
      return sparse;
    }
  }
  return std::nullopt;
}

std::vector<QueryGraph> QueryExtractor::ExtractSet(
    size_t num_vertices, QueryGraph::StructureClass cls, size_t count) {
  std::vector<QueryGraph> out;
  for (size_t i = 0; i < count; ++i) {
    auto q = Extract(num_vertices, cls);
    if (q) out.push_back(std::move(*q));
  }
  return out;
}

}  // namespace bdsm
