#include "graph/kcore.hpp"

#include <algorithm>

namespace bdsm {

std::vector<uint32_t> CoreNumbers(const LabeledGraph& g) {
  const size_t n = g.NumVertices();
  std::vector<uint32_t> degree(n), core(n, 0);
  size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(g.Degree(v));
    max_deg = std::max(max_deg, static_cast<size_t>(degree[v]));
  }

  // Bucket sort vertices by degree (classic O(|V|+|E|) peeling layout).
  std::vector<uint32_t> bucket_start(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);
  std::vector<uint32_t> pos(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      order[pos[v]] = v;
    }
  }

  std::vector<uint32_t> bin(bucket_start.begin(), bucket_start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    core[v] = degree[v];
    for (const Neighbor& nb : g.Neighbors(v)) {
      VertexId w = nb.v;
      if (degree[w] > degree[v]) {
        // Move w to the front of its bucket, then shrink its degree.
        uint32_t dw = degree[w];
        uint32_t pw = pos[w];
        uint32_t pfront = bin[dw];
        VertexId front = order[pfront];
        if (front != w) {
          std::swap(order[pw], order[pfront]);
          pos[w] = pfront;
          pos[front] = pw;
        }
        ++bin[dw];
        --degree[w];
      }
    }
  }
  return core;
}

uint32_t Degeneracy(const LabeledGraph& g) {
  std::vector<uint32_t> core = CoreNumbers(g);
  uint32_t mx = 0;
  for (uint32_t c : core) mx = std::max(mx, c);
  return mx;
}

}  // namespace bdsm
