/// \file query_graph.hpp
/// Small connected labeled query graph Q (|V(Q)| <= 16).
///
/// Query graphs are tiny (the paper evaluates 4..12 vertices), so we keep
/// per-vertex adjacency as a 16-bit mask in addition to explicit lists;
/// the WBM kernel uses the masks to find, in O(1), which already-matched
/// query vertices constrain the next level's candidates.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace bdsm {

/// Hard upper bound on |V(Q)| (paper max is 12; a uint16_t mask holds 16).
inline constexpr size_t kMaxQueryVertices = 16;

/// One query edge with its label.
struct QueryEdge {
  VertexId u1;
  VertexId u2;
  Label elabel = kNoLabel;

  friend bool operator==(const QueryEdge&, const QueryEdge&) = default;
};

class QueryGraph {
 public:
  QueryGraph() = default;
  explicit QueryGraph(std::vector<Label> vertex_labels);

  size_t NumVertices() const { return vlabels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  Label VertexLabel(VertexId u) const { return vlabels_[u]; }
  const std::vector<Label>& vertex_labels() const { return vlabels_; }

  /// Adds undirected edge (u1, u2).  Duplicate edges are rejected.
  bool AddEdge(VertexId u1, VertexId u2, Label elabel = kNoLabel);

  const std::vector<QueryEdge>& edges() const { return edges_; }
  const QueryEdge& edge(size_t i) const { return edges_[i]; }

  bool HasEdge(VertexId u1, VertexId u2) const {
    return (adj_mask_[u1] >> u2) & 1u;
  }
  Label EdgeLabelBetween(VertexId u1, VertexId u2) const;

  /// Bitmask of neighbors of u (bit i set iff (u, i) in E(Q)).
  uint16_t AdjacencyMask(VertexId u) const { return adj_mask_[u]; }

  size_t Degree(VertexId u) const { return neighbors_[u].size(); }
  const std::vector<VertexId>& NeighborsOf(VertexId u) const {
    return neighbors_[u];
  }

  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(edges_.size()) /
                     static_cast<double>(NumVertices());
  }

  bool IsConnected() const;
  bool IsTree() const {
    return IsConnected() && edges_.size() == NumVertices() - 1;
  }

  /// Structure class used throughout the evaluation (paper §VI-A).
  enum class StructureClass { kDense, kSparse, kTree };
  StructureClass Classify() const;

  /// Distinct vertex labels used by Q, sorted ascending.  The encoder only
  /// spends code bits on these labels (the paper's refinement of GSI).
  std::vector<Label> UsedVertexLabels() const;

  std::string ToString() const;

  /// Structural equality (labels, edges in insertion order, adjacency);
  /// used by the persistence layer's query-set round-trip checks.
  friend bool operator==(const QueryGraph&, const QueryGraph&) = default;

 private:
  std::vector<Label> vlabels_;
  std::vector<QueryEdge> edges_;
  std::array<uint16_t, kMaxQueryVertices> adj_mask_{};
  std::vector<std::vector<VertexId>> neighbors_;
};

/// Human-readable name of a structure class ("Dense"/"Sparse"/"Tree").
const char* ToString(QueryGraph::StructureClass c);

}  // namespace bdsm
