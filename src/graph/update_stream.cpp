#include "graph/update_stream.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/kcore.hpp"
#include "util/logging.hpp"

namespace bdsm {

size_t ApplyBatch(LabeledGraph* g, const UpdateBatch& batch) {
  size_t applied = 0;
  for (const UpdateOp& op : batch) {
    if (!op.is_insert) applied += g->RemoveEdge(op.u, op.v) ? 1 : 0;
  }
  for (const UpdateOp& op : batch) {
    if (op.is_insert) applied += g->InsertEdge(op.u, op.v, op.elabel) ? 1 : 0;
  }
  return applied;
}

void RevertBatch(LabeledGraph* g, const UpdateBatch& batch) {
  for (const UpdateOp& op : batch) {
    if (op.is_insert) GAMMA_CHECK(g->RemoveEdge(op.u, op.v));
  }
  for (const UpdateOp& op : batch) {
    if (!op.is_insert) {
      GAMMA_CHECK(g->InsertEdge(op.u, op.v, op.elabel));
    }
  }
}

UpdateBatch UpdateStreamGenerator::MakeInsertions(const LabeledGraph& g,
                                                  size_t count,
                                                  size_t elabels) {
  UpdateBatch batch;
  std::unordered_set<Edge, EdgeHash> used;
  const size_t n = g.NumVertices();
  if (n < 2) return batch;
  size_t attempts = 0;
  const size_t max_attempts = count * 64 + 1024;
  while (batch.size() < count && attempts++ < max_attempts) {
    // Bias endpoints towards high degree: walk one hop from a uniform
    // vertex with probability 1/2 (a cheap preferential-attachment proxy).
    auto sample_vertex = [&]() -> VertexId {
      VertexId v = static_cast<VertexId>(rng_.Uniform(n));
      auto nbrs = g.Neighbors(v);
      if (!nbrs.empty() && rng_.Chance(0.5)) {
        return nbrs[rng_.Uniform(nbrs.size())].v;
      }
      return v;
    };
    VertexId a = sample_vertex();
    VertexId b = sample_vertex();
    if (a == b) continue;
    Edge e(a, b);
    if (g.HasEdge(a, b) || used.count(e)) continue;
    used.insert(e);
    Label el = elabels == 0 ? kNoLabel
                            : static_cast<Label>(rng_.Uniform(elabels));
    batch.push_back(UpdateOp{true, e.u, e.v, el});
  }
  return batch;
}

UpdateBatch UpdateStreamGenerator::MakeDeletions(const LabeledGraph& g,
                                                 size_t count) {
  UpdateBatch batch;
  std::vector<Edge> edges = g.CollectEdges();
  if (edges.empty()) return batch;
  count = std::min(count, edges.size());
  // Partial Fisher-Yates over the edge list.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng_.Uniform(edges.size() - i);
    std::swap(edges[i], edges[j]);
    Label el = g.EdgeLabel(edges[i].u, edges[i].v);
    batch.push_back(UpdateOp{false, edges[i].u, edges[i].v, el});
  }
  return batch;
}

UpdateBatch UpdateStreamGenerator::MakeMixed(const LabeledGraph& g,
                                             size_t count, size_t ins_ratio,
                                             size_t del_ratio,
                                             size_t elabels) {
  GAMMA_CHECK(ins_ratio + del_ratio > 0);
  size_t ins = count * ins_ratio / (ins_ratio + del_ratio);
  size_t del = count - ins;
  UpdateBatch batch = MakeInsertions(g, ins, elabels);
  UpdateBatch dels = MakeDeletions(g, del);
  // A deleted edge must not also be (re)inserted within the same batch.
  std::unordered_set<Edge, EdgeHash> inserted;
  for (const UpdateOp& op : batch) inserted.insert(Edge(op.u, op.v));
  for (const UpdateOp& op : dels) {
    if (!inserted.count(Edge(op.u, op.v))) batch.push_back(op);
  }
  return batch;
}

UpdateBatch UpdateStreamGenerator::MakeCoreInsertions(const LabeledGraph& g,
                                                      size_t count, size_t k,
                                                      size_t elabels) {
  std::vector<uint32_t> core = CoreNumbers(g);
  std::vector<VertexId> pool;
  size_t kk = k;
  while (pool.empty() && kk > 0) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (core[v] >= kk) pool.push_back(v);
    }
    if (pool.empty()) --kk;
  }
  if (pool.size() < 2) {
    GAMMA_LOG_WARN("k-core pool too small (k=%zu); using whole graph", k);
    return MakeInsertions(g, count, elabels);
  }
  UpdateBatch batch;
  std::unordered_set<Edge, EdgeHash> used;
  size_t attempts = 0;
  const size_t max_attempts = count * 64 + 1024;
  while (batch.size() < count && attempts++ < max_attempts) {
    VertexId a = pool[rng_.PickIndex(pool)];
    VertexId b = pool[rng_.PickIndex(pool)];
    if (a == b) continue;
    Edge e(a, b);
    if (g.HasEdge(a, b) || used.count(e)) continue;
    used.insert(e);
    Label el = elabels == 0 ? kNoLabel
                            : static_cast<Label>(rng_.Uniform(elabels));
    batch.push_back(UpdateOp{true, e.u, e.v, el});
  }
  return batch;
}

UpdateBatch SanitizeBatch(const LabeledGraph& g, const UpdateBatch& batch) {
  UpdateBatch out;
  std::unordered_set<Edge, EdgeHash> seen;
  for (const UpdateOp& op : batch) {
    Edge e(op.u, op.v);
    if (op.u == op.v || seen.count(e)) continue;
    bool exists = g.HasEdge(op.u, op.v);
    if (op.is_insert == exists) continue;  // no-op insert or delete
    seen.insert(e);
    out.push_back(op);
  }
  return out;
}

}  // namespace bdsm
