#include "graph/datasets.hpp"

#include "graph/graph_generator.hpp"
#include "util/common.hpp"

namespace bdsm {

const std::vector<DatasetSpec>& AllDatasets() {
  // Twin sizes are chosen so |E| stays in the 10k–120k range: large
  // enough that warp scheduling / load imbalance effects are visible,
  // small enough that the full benchmark suite runs in minutes.
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kGithub, "GH", "Github", 37'700, 300'000, 5, 1, 15.3,
       3'000},
      {DatasetId::kSkitter, "ST", "Skitter", 1'700'000, 11'100'000, 25, 1,
       13.1, 8'000},
      {DatasetId::kAmazon, "AZ", "Amazon", 400'000, 2'400'000, 6, 1, 12.2,
       6'000},
      {DatasetId::kLiveJournal, "LJ", "LiveJournal", 4'900'000, 42'900'000,
       30, 1, 18.1, 9'000},
      {DatasetId::kNetflow, "NF", "Netflow", 3'100'000, 2'900'000, 1, 7,
       2.0, 10'000},
      {DatasetId::kLSBench, "LS", "LSBench", 5'200'000, 20'300'000, 1, 44,
       8.2, 8'000},
  };
  return kSpecs;
}

const DatasetSpec& DatasetByName(const std::string& short_name) {
  for (const DatasetSpec& s : AllDatasets()) {
    if (short_name == s.short_name) return s;
  }
  GAMMA_CHECK_MSG(false, "unknown dataset");
  __builtin_unreachable();
}

LabeledGraph LoadDataset(const DatasetSpec& spec) {
  GeneratorParams p;
  p.num_vertices = spec.twin_vertices;
  p.avg_degree = spec.avg_degree;
  p.vertex_labels = spec.vertex_labels;
  p.edge_labels = spec.edge_labels;
  // Netflow's single dominating edge label is what blows up CaLiG
  // (paper §VI-B); a strong Zipf exponent reproduces that skew.
  p.edge_label_skew = spec.id == DatasetId::kNetflow ? 1.4 : 0.8;
  p.vertex_label_skew = 0.6;
  // Low-degree datasets need stronger clustering for their (real)
  // dense pockets to survive the down-scaling; Netflow (davg = 2.0)
  // additionally gets an explicitly dense hub core, the twin of the
  // interconnected-router region that makes Dense query sets
  // extractable from the real graph.
  p.triangle_prob = spec.avg_degree < 9.0 ? 0.5 : 0.3;
  if (spec.id == DatasetId::kNetflow) {
    p.dense_core_vertices = 120;
    p.dense_core_avg_degree = 10.0;
  }
  p.seed = 0x5eedull + static_cast<uint64_t>(spec.id) * 7919;
  return GeneratePowerLawGraph(p);
}

LabeledGraph LoadDataset(DatasetId id) {
  for (const DatasetSpec& s : AllDatasets()) {
    if (s.id == id) return LoadDataset(s);
  }
  GAMMA_CHECK_MSG(false, "unknown dataset id");
  __builtin_unreachable();
}

}  // namespace bdsm
