#include "graph/graph_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/common.hpp"

namespace bdsm {

namespace {

struct ParsedGraph {
  std::vector<Label> vlabels;
  struct E {
    VertexId u, v;
    Label el;
  };
  std::vector<E> edges;
};

ParsedGraph ParseFile(const std::string& path) {
  std::ifstream in(path);
  GAMMA_CHECK_MSG(in.good(), path.c_str());
  ParsedGraph out;
  std::string line;
  size_t declared_vertices = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    char tag;
    ls >> tag;
    if (tag == 't') {
      size_t ne;
      ls >> declared_vertices >> ne;
      out.vlabels.assign(declared_vertices, 0);
    } else if (tag == 'v') {
      VertexId id;
      Label lbl;
      ls >> id >> lbl;
      GAMMA_CHECK_MSG(id < out.vlabels.size(), "vertex id out of range");
      out.vlabels[id] = lbl;
    } else if (tag == 'e') {
      VertexId u, v;
      ls >> u >> v;
      Label el;
      if (ls >> el) {
        out.edges.push_back({u, v, el});
      } else {
        out.edges.push_back({u, v, kNoLabel});
      }
    }
  }
  return out;
}

void WriteGraphFile(const std::vector<Label>& vlabels,
                    const std::vector<QueryEdge>& edges,
                    const std::string& path) {
  std::ofstream outf(path);
  GAMMA_CHECK_MSG(outf.good(), path.c_str());
  outf << "t " << vlabels.size() << " " << edges.size() << "\n";
  for (size_t v = 0; v < vlabels.size(); ++v) {
    outf << "v " << v << " " << vlabels[v] << "\n";
  }
  for (const QueryEdge& e : edges) {
    outf << "e " << e.u1 << " " << e.u2;
    if (e.elabel != kNoLabel) outf << " " << e.elabel;
    outf << "\n";
  }
  GAMMA_CHECK_MSG(outf.good(), "write failed");
}

}  // namespace

void SaveGraph(const LabeledGraph& g, const std::string& path) {
  std::vector<QueryEdge> edges;
  edges.reserve(g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (v < nb.v) edges.push_back(QueryEdge{v, nb.v, nb.elabel});
    }
  }
  WriteGraphFile(g.vertex_labels(), edges, path);
}

LabeledGraph LoadGraph(const std::string& path) {
  ParsedGraph p = ParseFile(path);
  LabeledGraph g(std::move(p.vlabels));
  for (const auto& e : p.edges) {
    g.InsertEdge(e.u, e.v, e.el);
  }
  return g;
}

void SaveQuery(const QueryGraph& q, const std::string& path) {
  WriteGraphFile(q.vertex_labels(), q.edges(), path);
}

QueryGraph LoadQuery(const std::string& path) {
  ParsedGraph p = ParseFile(path);
  QueryGraph q(std::move(p.vlabels));
  for (const auto& e : p.edges) {
    q.AddEdge(e.u, e.v, e.el);
  }
  return q;
}

}  // namespace bdsm
