/// \file datasets.hpp
/// Registry of the six evaluation datasets (Table II of the paper) as
/// scaled synthetic twins.
///
/// The originals (Github, Skitter, Amazon, LiveJournal, Netflow, LSBench)
/// are public but unavailable offline; each twin preserves the *shape*
/// parameters the paper's analysis depends on — label alphabet sizes,
/// average degree, degree skew, and (for NF/LS) edge-label skew — at a
/// size where every experiment completes in seconds on one CPU core.
/// See docs/BENCHMARKS.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "graph/labeled_graph.hpp"

namespace bdsm {

/// Dataset identifiers in the paper's order.
enum class DatasetId { kGithub, kSkitter, kAmazon, kLiveJournal,
                       kNetflow, kLSBench };

struct DatasetSpec {
  DatasetId id;
  const char* short_name;   ///< "GH", "ST", ...
  const char* full_name;    ///< "Github", ...
  size_t paper_vertices;    ///< |V| in Table II
  size_t paper_edges;       ///< |E| in Table II
  size_t vertex_labels;     ///< |Sigma_V|
  size_t edge_labels;       ///< |Sigma_E|
  double avg_degree;        ///< davg
  size_t twin_vertices;     ///< scaled |V| used in this repo
};

/// All six dataset specs, paper order (GH, ST, AZ, LJ, NF, LS).
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by short name ("GH" ...); aborts on unknown name.
const DatasetSpec& DatasetByName(const std::string& short_name);

/// Instantiates the synthetic twin of a dataset.  Deterministic: the same
/// id always yields the identical graph.
LabeledGraph LoadDataset(DatasetId id);
LabeledGraph LoadDataset(const DatasetSpec& spec);

}  // namespace bdsm
