/// \file graph_generator.hpp
/// Synthetic labeled-graph synthesis.
///
/// The paper evaluates on six public graphs (Table II).  This repository
/// runs offline, so src/graph/datasets.cpp instantiates scaled "twins" of
/// those graphs through this generator: preferential attachment gives the
/// power-law degree skew the paper leans on ("the prevalence of power-law
/// distributions in real-world graphs"), and Zipf label assignment gives
/// the label-frequency skew that drives e.g. CaLiG's collapse on Netflow.
#pragma once

#include <cstdint>

#include "graph/labeled_graph.hpp"
#include "util/rng.hpp"

namespace bdsm {

/// Parameters of one synthetic graph.
struct GeneratorParams {
  size_t num_vertices = 1000;
  /// Target average degree (davg of Table II); the generator attaches
  /// ~davg/2 edges per arriving vertex.
  double avg_degree = 8.0;
  /// Vertex-label alphabet size |Sigma_V|; labels Zipf-distributed.
  size_t vertex_labels = 4;
  /// Edge-label alphabet size |Sigma_E|; 0 or 1 => unlabeled edges.
  size_t edge_labels = 1;
  /// Zipf exponent for vertex labels (0 = uniform).
  double vertex_label_skew = 0.6;
  /// Zipf exponent for edge labels (Netflow needs a large one).
  double edge_label_skew = 0.8;
  /// Triadic-closure probability: with this chance an attachment edge
  /// goes to a neighbor of the chosen target instead, creating the
  /// clustered dense pockets real graphs have (and Dense query
  /// extraction needs) even at low average degree.
  double triangle_prob = 0.3;
  /// Optional dense hub core: the first `dense_core_vertices` arrivals
  /// attach with `dense_core_avg_degree` instead of `avg_degree`.
  /// Models graphs like Netflow whose global davg is tiny but whose hub
  /// region (interconnected routers) is dense — the structure that makes
  /// Dense query sets extractable from the real dataset.
  size_t dense_core_vertices = 0;
  double dense_core_avg_degree = 8.0;
  /// RNG seed; every dataset twin fixes this for reproducibility.
  uint64_t seed = 42;
};

/// Builds a connected power-law graph with the given parameters.
/// Preferential attachment via the standard "pick an endpoint of a random
/// existing edge" trick (degree-proportional without bookkeeping).
LabeledGraph GeneratePowerLawGraph(const GeneratorParams& params);

/// Erdős–Rényi-style uniform random labeled graph (tests use this when
/// degree skew would get in the way).
LabeledGraph GenerateUniformGraph(size_t num_vertices, size_t num_edges,
                                  size_t vertex_labels, size_t edge_labels,
                                  uint64_t seed);

}  // namespace bdsm
