/// \file kcore.hpp
/// k-core decomposition (Matula–Beck peeling).
///
/// Fig. 10 of the paper controls update-region density by sampling
/// insertion endpoints from the k-core of LSBench with k in {4, 8, 12};
/// this module provides the core numbers that sampling needs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.hpp"

namespace bdsm {

/// Core number of every vertex (core[v] = largest k such that v belongs
/// to the k-core).  O(|E|) bucket peeling.
std::vector<uint32_t> CoreNumbers(const LabeledGraph& g);

/// Maximum core number present in g (0 for empty graphs).
uint32_t Degeneracy(const LabeledGraph& g);

}  // namespace bdsm
