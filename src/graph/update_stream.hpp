/// \file update_stream.hpp
/// Graph update streams and batches (Definition 1 of the paper).
///
/// A stream is a sequence of batches; a batch is a set of edge insertions
/// and deletions applied *atomically* — BDSM only cares about the match
/// difference across the whole batch, not about intra-batch ordering.
/// `UpdateStreamGenerator` synthesizes the workloads used throughout the
/// evaluation: pure insertion at rate Ir, pure deletion, the 2:1 mixed
/// workload of Fig. 11, and the k-core-restricted dense-region insertions
/// of Fig. 10.  The richer scenario workloads (power-law growth,
/// sliding-window expiry, bursts, churn, hotspots) and the trace
/// record/replay format live one layer up in src/workload/ (see
/// docs/WORKLOADS.md); they emit the same `UpdateBatch` format.
#pragma once

#include <vector>

#include "graph/labeled_graph.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace bdsm {

/// One edge update: the paper's "(⊕, e)" with ⊕ ∈ {+, -}.
struct UpdateOp {
  bool is_insert;           ///< ⊕: true = insertion, false = deletion
  VertexId u;               ///< edge endpoint (graphs are undirected)
  VertexId v;               ///< edge endpoint
  Label elabel = kNoLabel;  ///< edge label; kNoLabel on unlabeled graphs

  friend bool operator==(const UpdateOp&, const UpdateOp&) = default;
};

/// A batch ∆B of updates; |∆B| > 1 makes the graph *batch-dynamic*.
/// Engines only guarantee the *net* match difference across the whole
/// batch; feed batches to Engine::ProcessBatch or StreamPipeline::Run,
/// which sanitize them first (see SanitizeBatch).
using UpdateBatch = std::vector<UpdateOp>;

/// Applies a batch to the host graph.  Deletions execute before
/// insertions so a batch may legally delete an edge and re-insert it with
/// a different label.  Returns the number of ops that took effect.
size_t ApplyBatch(LabeledGraph* g, const UpdateBatch& batch);

/// Reverts a previously applied batch (for oracles/tests that need the
/// pre-update graph back).
void RevertBatch(LabeledGraph* g, const UpdateBatch& batch);

/// Workload synthesizer.  All sampling is deterministic given the seed.
class UpdateStreamGenerator {
 public:
  explicit UpdateStreamGenerator(uint64_t seed) : rng_(seed) {}

  /// A batch of `count` edge insertions between existing vertices,
  /// avoiding duplicates of existing or already-sampled edges.  Endpoints
  /// are biased towards high-degree vertices (picked via random existing
  /// edge endpoints) to mimic preferential growth of real graphs.
  /// `elabels`: edge-label alphabet size (0 = unlabeled edges).
  UpdateBatch MakeInsertions(const LabeledGraph& g, size_t count,
                             size_t elabels);

  /// A batch deleting `count` uniformly sampled existing edges.
  UpdateBatch MakeDeletions(const LabeledGraph& g, size_t count);

  /// Mixed batch with insert:delete = `ins_ratio`:`del_ratio`
  /// (Fig. 11 uses 2:1).  `count` is the total op count.
  UpdateBatch MakeMixed(const LabeledGraph& g, size_t count,
                        size_t ins_ratio, size_t del_ratio, size_t elabels);

  /// Insertions whose endpoints both lie in the k-core of g (Fig. 10's
  /// density-controlled update regions).  Falls back to the densest
  /// available core when the requested core is empty.
  UpdateBatch MakeCoreInsertions(const LabeledGraph& g, size_t count,
                                 size_t k, size_t elabels);

 private:
  Rng rng_;
};

/// Removes intra-batch conflicts: duplicate ops on one edge, insertion of
/// existing edges, deletion of absent edges.  Keeps first occurrence.
UpdateBatch SanitizeBatch(const LabeledGraph& g, const UpdateBatch& batch);

}  // namespace bdsm
