/// \file labeled_graph.hpp
/// Host-side dynamic undirected labeled graph (the "data graph" G).
///
/// This is the CPU-resident master copy of the data graph.  The GPU-side
/// copy lives in a GPMA (src/gpma); both are kept in sync by the update
/// pipeline.  Adjacency lists are maintained sorted by neighbor id so
/// that candidate-set intersection can use merge/binary-search, exactly
/// like the device kernels do.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace bdsm {

/// One adjacency entry: the neighbor and the label of the connecting edge
/// (kNoLabel when the dataset has unlabeled edges, e.g. GH/ST/AZ/LJ).
struct Neighbor {
  VertexId v;
  Label elabel;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Creates a graph with `n` vertices and the given vertex labels.
  explicit LabeledGraph(std::vector<Label> vertex_labels)
      : vlabels_(std::move(vertex_labels)), adj_(vlabels_.size()) {}

  size_t NumVertices() const { return vlabels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  Label VertexLabel(VertexId v) const { return vlabels_[v]; }
  const std::vector<Label>& vertex_labels() const { return vlabels_; }

  size_t Degree(VertexId v) const { return adj_[v].size(); }

  /// Sorted (by neighbor id) adjacency list of v.
  std::span<const Neighbor> Neighbors(VertexId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  /// Appends a new isolated vertex; returns its id.
  VertexId AddVertex(Label label);

  /// Relabels an existing vertex (used by CaLiG's transformed graph to
  /// recycle orphaned edge-vertices).
  void SetVertexLabel(VertexId v, Label label) { vlabels_[v] = label; }

  /// Inserts undirected edge (u, v) with the given edge label.
  /// Returns false (and leaves the graph unchanged) if the edge already
  /// exists or u == v; BDSM batches are sanitized against such conflicts.
  bool InsertEdge(VertexId u, VertexId v, Label elabel = kNoLabel);

  /// Removes undirected edge (u, v).  Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  /// Label of edge (u, v); kNoLabel if the edge is absent.
  Label EdgeLabel(VertexId u, VertexId v) const;

  /// Number of neighbors of v whose *vertex* label is `l`
  /// (the |N^l(v)| of the paper's preprocessing).  O(deg(v)).
  size_t CountNeighborsWithLabel(VertexId v, Label l) const;

  /// Number of distinct vertex labels present (max label + 1).
  size_t VertexLabelAlphabet() const;
  /// Number of distinct edge labels present (max label + 1); 0 when all
  /// edges are unlabeled.
  size_t EdgeLabelAlphabet() const;

  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges_) /
                     static_cast<double>(NumVertices());
  }

  /// All edges, canonicalized (u < v).  O(|E|); used by tests & oracles.
  std::vector<Edge> CollectEdges() const;

  /// Structural equality: same vertex labels and identical (sorted)
  /// adjacency, edge labels included.  Two graphs that evolved through
  /// different but equivalent update orders compare equal — the
  /// invariant the persistence layer's replica serialization round-trip
  /// (persist/snapshot.hpp) is verified against.
  friend bool operator==(const LabeledGraph&, const LabeledGraph&) = default;

 private:
  // Finds the position of v in adj_[u]; adj_[u].size() if absent.
  size_t FindSlot(VertexId u, VertexId v) const;

  std::vector<Label> vlabels_;
  std::vector<std::vector<Neighbor>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace bdsm
