/// \file query_extractor.hpp
/// Query-set synthesis by random extraction from the data graph
/// (paper §VI-A: "we generate query graphs by randomly extracting
/// subgraphs from the data graph", categorized Dense / Sparse / Tree).
#pragma once

#include <optional>
#include <vector>

#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"
#include "util/rng.hpp"

namespace bdsm {

class QueryExtractor {
 public:
  QueryExtractor(const LabeledGraph& g, uint64_t seed)
      : g_(g), rng_(seed) {}

  /// Extracts one connected query with `num_vertices` vertices of the
  /// requested structure class, or nullopt if the sampler failed to find
  /// one within its attempt budget (can happen for Dense on very sparse
  /// graphs).
  std::optional<QueryGraph> Extract(size_t num_vertices,
                                    QueryGraph::StructureClass cls);

  /// Extracts a query *set* (paper default: 50 per size & class).  Falls
  /// back to fewer queries when the graph cannot supply enough.
  std::vector<QueryGraph> ExtractSet(size_t num_vertices,
                                     QueryGraph::StructureClass cls,
                                     size_t count);

 private:
  // Random-walk induced-subgraph sample of `n` vertices.  With
  // `dense_bias`, the walk starts in a high-core region and greedily
  // prefers neighbors with many links back into the sample, so the
  // induced subgraph has a chance of reaching davg >= 3.
  std::optional<std::vector<VertexId>> SampleConnectedVertices(
      size_t n, bool dense_bias);

  const std::vector<uint32_t>& CoreCache();

  const LabeledGraph& g_;
  Rng rng_;
  std::vector<uint32_t> core_cache_;
  std::vector<VertexId> dense_pool_;
};

}  // namespace bdsm
