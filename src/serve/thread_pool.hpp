/// \file thread_pool.hpp
/// Persistent worker pool of the serving layer (src/serve/).
///
/// ShardedEngine fans each processing phase out across its shards on a
/// pool that lives for the engine's lifetime, so per-batch cost is the
/// work itself, not thread creation.  The pool is deliberately minimal:
/// FIFO task queue, `Post` for fire-and-forget work, and a blocking
/// `ParallelFor` barrier used by the phase fan-out.
///
/// Determinism: the pool makes no ordering promises between tasks; all
/// serving-layer determinism comes from merging results in a fixed
/// (shard-index) order *after* the ParallelFor barrier, never from
/// scheduling.  ShardedEngine output is therefore identical for any
/// pool size (tested in serve_test.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bdsm::serve {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Thread-safe: Post/ParallelFor may be called from any thread,
/// including (for Post) a pool worker.  ParallelFor must not be called
/// from a worker — the caller blocks on the barrier, and a blocked
/// worker could deadlock the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  /// Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues one task; returns immediately.
  void Post(std::function<void()> task);

  /// Runs body(0..n-1) on the pool and blocks until every call
  /// returned.  The first exception thrown by any body is rethrown on
  /// the caller's thread after the barrier (remaining indices still
  /// run).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bdsm::serve
