#include "serve/thread_pool.hpp"

#include <exception>

#include "util/common.hpp"

namespace bdsm::serve {

ThreadPool::ThreadPool(size_t num_threads) {
  GAMMA_CHECK_MSG(num_threads > 0, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;

  struct Barrier {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::exception_ptr first_error;
  } barrier;
  barrier.remaining = n;

  for (size_t i = 0; i < n; ++i) {
    Post([&barrier, &body, i] {
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(barrier.mu);
      if (error && !barrier.first_error) barrier.first_error = error;
      if (--barrier.remaining == 0) barrier.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(barrier.mu);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
  if (barrier.first_error) std::rethrow_exception(barrier.first_error);
}

}  // namespace bdsm::serve
