/// \file tenant_front_door.hpp
/// Multi-tenant front door: tenant namespaces, admission control, and
/// SLO-aware batch formation over any inner engine.
///
/// The serving subsystem's answer to *many users* (ShardedEngine
/// answers *many queries*): a TenantFrontDoor wraps one inner engine —
/// any registry spec, `tenant(sharded(gamma, shards=4))` composes —
/// and puts a control plane in front of its data plane:
///
///  * **Namespaces.**  Tenants register through
///    `TenantControl::RegisterTenant` and own their standing queries
///    (`AddTenantQuery`); public QueryIds remain the inner engine's
///    ids, the front door only keeps the ownership map, so the Engine
///    contract (QueryIds, reports, snapshots) is unchanged.  Plain
///    `AddQuery`/`ProcessBatch` traffic belongs to the built-in
///    default tenant (id 0).  Quotas: standing-query count
///    (`TenantPolicy::max_queries`) and a per-batch result budget.
///  * **Admission.**  Each tenant ingests into its own bounded queue
///    (`Ingest`); `PumpFormedBatch` fills the next batch class by
///    class (gold, silver, best_effort; round-robin inside a class),
///    spending per-tenant token buckets that refill per formed batch —
///    batch ticks, never wall time, so admission is a pure function of
///    (stream, policy).  Overload never blocks: queue overflow sheds,
///    a blown result budget degrades (the tenant's admission share is
///    clamped for the next `degrade_batches` batches), and every
///    decision is counted per tenant.  With `admission=off` the pump
///    drains all queues in global arrival order instead — the
///    noisy-neighbor baseline.
///  * **SLO batch formation.**  The pump's target batch size adapts
///    AIMD-style to the recent formed-batch latency tail, read under
///    the inner engine's declared clock (`Describe().clock` — modeled
///    device seconds, critical path, or host wall; never a wall-clock
///    parallelism claim): halve when the window's max exceeds
///    `slo_seconds`, add `batch_ops_min` when it doesn't, clamped to
///    [batch_ops_min, batch_ops_max].
///  * **Accounting.**  Per-tenant offered/admitted/shed/degraded op
///    counts, per-batch service and queue-wait samples (the wait is
///    virtual-clock: the sum of formed-batch latencies stands in for
///    time, keeping p50/p95/p99 deterministic), and a Jain fairness
///    index over admitted/offered shares — surfaced by ScenarioRunner
///    and `bench_scenarios --json`.
///
/// Pass-through guarantee (tested): the direct `ProcessBatch` path
/// forwards the engine phases 1:1 to the inner engine; under the
/// default (fully permissive) policy the wrapped engine is
/// match-identical — vectors, counts, stats — to the bare inner
/// engine.  Only when the default tenant carries a token-bucket rate
/// does the flat path clamp (admit a prefix, shed the tail,
/// deterministically).  Batch *formation* applies only on the
/// Ingest/Pump path: coalescing changes batch boundaries, and batch
/// boundaries are semantics (incremental matches are per batch).
///
/// Threading: the front door adds no threads and, like every Engine,
/// is externally synchronized; drive it from one thread at a time.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"

namespace bdsm::serve {

class TenantFrontDoor final : public Engine, public TenantControl {
 public:
  /// Wraps an engine built from `inner` (any registry spec tree) over
  /// `g`.  `options.front_door` configures this layer; inline spec
  /// keys (tenant(..., slo=0.01)) arrive already applied onto it.
  /// Throws EngineSpecError when the inner spec does not resolve.
  TenantFrontDoor(const EngineSpec& inner, const LabeledGraph& g,
                  const EngineOptions& options = {});
  /// Convenience: parses `inner` ("gamma", "sharded(gamma)", ...).
  TenantFrontDoor(const std::string& inner, const LabeledGraph& g,
                  const EngineOptions& options = {});
  ~TenantFrontDoor() override;

  /// The canonical spec, e.g. "tenant(sharded(gamma, shards=4))".
  const char* Name() const override { return name_.c_str(); }
  /// Inner engine's capabilities + supports_tenancy; the clock is the
  /// inner engine's (this layer adds no concurrency).
  EngineInfo Describe() const override;

  /// Registers for the default tenant (id 0); subject to its quota.
  QueryId AddQuery(const QueryGraph& q) override;
  bool RemoveQuery(QueryId id) override;
  std::vector<QueryId> QueryIds() const override;

  /// Snapshots pass through to the inner engine.  Tenancy is runtime
  /// policy, not matched state: restored queries re-register under the
  /// default tenant (re-attach ownership via AddTenantQuery on a fresh
  /// front door when tenant-faithful restore matters).
  std::vector<RegisteredQuery> RegisteredQueries() const override;
  bool RestoreQuery(const QueryGraph& q, QueryId id) override;

  const LabeledGraph& host_graph() const override {
    return inner_->host_graph();
  }

  TenantControl* tenant_control() override { return this; }

  Engine& inner() { return *inner_; }

  // ----------------------------------------------- TenantControl
  TenantId RegisterTenant(const std::string& name,
                          const TenantPolicy& policy) override;
  size_t NumTenants() const override { return tenants_.size(); }
  QueryId AddTenantQuery(TenantId tenant, const QueryGraph& q) override;
  TenantId OwnerOf(QueryId id) const override;
  void Ingest(TenantId tenant, const UpdateBatch& ops) override;
  size_t PendingOps() const override;
  bool PumpFormedBatch(FormedBatchStats* out) override;
  size_t TargetBatchOps() const override { return target_ops_; }
  TenantSnapshot Snapshot(TenantId tenant) const override;
  double JainFairnessIndex() const override;

 protected:
  // Flat pass-through: each phase forwards to the inner engine (the
  // friend grant in core/engine.hpp), with the default tenant's
  // token bucket optionally clamping the batch at the negative phase
  // (the fixed first phase of every batch — see the phase contract).
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& options,
                     BatchReport* report) override;
  void RunUpdatePhase(const UpdateBatch& batch, const BatchOptions& options,
                      BatchReport* report) override;

 private:
  struct Tenant {
    std::string name;
    TenantPolicy policy;
    TenantCounters counters;
    /// FIFO of pending ops with their global arrival sequence and the
    /// virtual-clock stamp taken at Ingest.
    struct QueuedOp {
      UpdateOp op;
      TenantId owner;
      uint64_t seq;
      double arrival_vclock;
    };
    std::deque<QueuedOp> queue;
    double tokens = 0.0;        ///< token bucket (rate > 0 only)
    size_t degrade_left = 0;    ///< formed batches still clamped
    size_t live_queries = 0;
    std::vector<double> service_seconds;
    std::vector<double> queue_wait_seconds;
  };

  size_t QueueLimit(const Tenant& t) const;
  /// Refills one bucket by its per-batch rate, capped at the burst
  /// (floor 1.0 so a fractional rate still eventually admits); batch
  /// ticks are the only refill trigger — the deterministic clock.
  static void RefillBucket(Tenant* t);
  /// Admission ON: fill up to `target` ops class by class, one op per
  /// tenant per round-robin visit, spending tokens and honoring
  /// degrade clamps.  Admission OFF: drain in global arrival order.
  /// Pops the chosen ops off the queues; `admitted_per_tenant` gets
  /// one count per tenant.  The returned ops are in arrival order.
  std::vector<Tenant::QueuedOp> SelectOps(
      size_t target, std::vector<size_t>* admitted_per_tenant);
  /// Per-batch latency of `report` under the inner engine's clock.
  double ClockSeconds(const BatchReport& report) const;
  /// Publishes this tenant's registry-backed views (`tenant.<name>.*`
  /// gauges) straight from its TenantCounters — the same variables the
  /// per-tenant report rows read, so the two can never disagree.
  /// No-op unless observability is compiled in and runtime-enabled.
  void PublishTenantObs(const Tenant& t) const;
  /// One AIMD step on target_ops_ after observing `latency`.
  void AdaptTarget(double latency);

  std::unique_ptr<Engine> inner_;
  std::string name_;
  FrontDoorOptions fd_;
  DeviceConfig device_;     ///< for ModeledSeconds under the modeled clock
  ClockDomain inner_clock_ = ClockDomain::kHostWall;

  std::vector<Tenant> tenants_;                    ///< index == TenantId
  std::unordered_map<QueryId, TenantId> owner_of_;  ///< public id -> tenant

  uint64_t next_seq_ = 0;   ///< global arrival order across queues
  double vclock_ = 0.0;     ///< sum of formed-batch latencies
  uint64_t formed_batches_ = 0;  ///< batch tag for obs spans
  size_t target_ops_ = 0;   ///< current SLO target batch size
  std::deque<double> latency_window_;
  size_t rr_cursor_ = 0;    ///< round-robin start within a class

  // Flat-path per-batch state: the clamped batch chosen at the
  // negative phase, reused by the update and positive phases so all
  // three see identical ops.
  UpdateBatch flat_clamped_;
  bool flat_use_clamped_ = false;
};

/// Registers the "tenant" wrapper (called from RegisterServeEngines).
void RegisterTenantEngine(EngineRegistry* registry);

}  // namespace bdsm::serve
