#include "serve/tenant_front_door.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace bdsm::serve {

namespace {

/// Spec-value formatting for doubles: trim trailing zeros so the
/// canonical spec reads `slo=0.01`, not `slo=0.010000`.
std::string FormatDouble(double v) {
  std::string s = std::to_string(v);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    s.erase(std::max(last, dot + 1) + 1);
  }
  return s;
}

}  // namespace

TenantFrontDoor::TenantFrontDoor(const EngineSpec& inner,
                                 const LabeledGraph& g,
                                 const EngineOptions& options)
    : inner_(MakeEngine(inner, g, options)),
      fd_(options.front_door),
      device_(options.gamma.device) {
  GAMMA_CHECK_MSG(fd_.batch_ops_min >= 1 && fd_.batch_ops_min <= fd_.batch_ops_max,
                  "tenant front door needs 1 <= batch_min <= batch_max");
  target_ops_ = std::clamp(fd_.batch_ops_init, fd_.batch_ops_min,
                           fd_.batch_ops_max);
  if (fd_.slo_window == 0) fd_.slo_window = 1;
  inner_clock_ = inner_->Describe().clock;

  // Canonical spec: composed from the *built* inner engine with every
  // non-default knob of this layer materialized, same as ShardedEngine
  // (the provenance key bench JSON rows are diffed by).
  const FrontDoorOptions defaults;
  EngineSpec self;
  self.name = "tenant";
  self.children.push_back(
      EngineSpec::Parse(inner_->Describe().canonical_spec));
  if (fd_.preregister_tenants > 0) {
    self.options.emplace_back("tenants",
                              std::to_string(fd_.preregister_tenants));
  }
  if (fd_.admission != defaults.admission) {
    self.options.emplace_back("admission", "off");
  }
  if (fd_.slo_seconds != defaults.slo_seconds) {
    self.options.emplace_back("slo", FormatDouble(fd_.slo_seconds));
  }
  if (fd_.batch_ops_min != defaults.batch_ops_min) {
    self.options.emplace_back("batch_min", std::to_string(fd_.batch_ops_min));
  }
  if (fd_.batch_ops_max != defaults.batch_ops_max) {
    self.options.emplace_back("batch_max", std::to_string(fd_.batch_ops_max));
  }
  if (fd_.batch_ops_init != defaults.batch_ops_init) {
    self.options.emplace_back("batch_init",
                              std::to_string(fd_.batch_ops_init));
  }
  if (fd_.slo_window != defaults.slo_window) {
    self.options.emplace_back("window", std::to_string(fd_.slo_window));
  }
  if (fd_.queue_limit_ops != defaults.queue_limit_ops) {
    self.options.emplace_back("queue_limit",
                              std::to_string(fd_.queue_limit_ops));
  }
  if (fd_.degrade_batches != defaults.degrade_batches) {
    self.options.emplace_back("degrade", std::to_string(fd_.degrade_batches));
  }
  if (fd_.default_policy.rate_ops_per_batch !=
      defaults.default_policy.rate_ops_per_batch) {
    self.options.emplace_back(
        "rate", FormatDouble(fd_.default_policy.rate_ops_per_batch));
  }
  if (fd_.default_policy.burst_ops != defaults.default_policy.burst_ops) {
    self.options.emplace_back("burst",
                              FormatDouble(fd_.default_policy.burst_ops));
  }
  if (fd_.default_policy.result_budget !=
      defaults.default_policy.result_budget) {
    self.options.emplace_back(
        "result_budget", std::to_string(fd_.default_policy.result_budget));
  }
  name_ = self.ToString();
  StampCanonicalSpec(name_);

  // The built-in default tenant (id 0) owns all plain AddQuery /
  // ProcessBatch traffic; `tenants=N` pre-registers N more.
  RegisterTenant("default", fd_.default_policy);
  for (size_t i = 0; i < fd_.preregister_tenants; ++i) {
    RegisterTenant("t" + std::to_string(i), fd_.default_policy);
  }
}

TenantFrontDoor::TenantFrontDoor(const std::string& inner,
                                 const LabeledGraph& g,
                                 const EngineOptions& options)
    : TenantFrontDoor(EngineSpec::Parse(inner), g, options) {}

TenantFrontDoor::~TenantFrontDoor() = default;

EngineInfo TenantFrontDoor::Describe() const {
  EngineInfo info = inner_->Describe();
  info.inner_spec = info.canonical_spec;
  info.canonical_spec = CanonicalSpecOrName();
  info.supports_tenancy = true;
  return info;
}

QueryId TenantFrontDoor::AddQuery(const QueryGraph& q) {
  return AddTenantQuery(kDefaultTenantId, q);
}

bool TenantFrontDoor::RemoveQuery(QueryId id) {
  if (!inner_->RemoveQuery(id)) return false;
  auto it = owner_of_.find(id);
  if (it != owner_of_.end()) {
    --tenants_[it->second].live_queries;
    owner_of_.erase(it);
  }
  return true;
}

std::vector<QueryId> TenantFrontDoor::QueryIds() const {
  return inner_->QueryIds();
}

std::vector<RegisteredQuery> TenantFrontDoor::RegisteredQueries() const {
  return inner_->RegisteredQueries();
}

bool TenantFrontDoor::RestoreQuery(const QueryGraph& q, QueryId id) {
  if (!inner_->RestoreQuery(q, id)) return false;
  owner_of_[id] = kDefaultTenantId;
  ++tenants_[kDefaultTenantId].live_queries;
  return true;
}

// ----------------------------------------------------- TenantControl

TenantId TenantFrontDoor::RegisterTenant(const std::string& name,
                                         const TenantPolicy& policy) {
  Tenant t;
  t.name = name;
  t.policy = policy;
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

QueryId TenantFrontDoor::AddTenantQuery(TenantId tenant,
                                        const QueryGraph& q) {
  GAMMA_CHECK_MSG(tenant < tenants_.size(), "unknown tenant id");
  Tenant& t = tenants_[tenant];
  if (t.policy.max_queries > 0 && t.live_queries >= t.policy.max_queries) {
    ++t.counters.rejected_queries;
    return kInvalidQueryId;
  }
  QueryId id = inner_->AddQuery(q);
  owner_of_[id] = tenant;
  ++t.live_queries;
  return id;
}

TenantId TenantFrontDoor::OwnerOf(QueryId id) const {
  auto it = owner_of_.find(id);
  return it == owner_of_.end() ? kInvalidTenantId : it->second;
}

size_t TenantFrontDoor::QueueLimit(const Tenant& t) const {
  return t.policy.queue_limit_ops > 0 ? t.policy.queue_limit_ops
                                      : fd_.queue_limit_ops;
}

void TenantFrontDoor::Ingest(TenantId tenant, const UpdateBatch& ops) {
  GAMMA_CHECK_MSG(tenant < tenants_.size(), "unknown tenant id");
  Tenant& t = tenants_[tenant];
  // admission=off means the baseline arm of the experiment: pure FIFO,
  // no shedding — queues grow unboundedly so queue-wait degradation is
  // visible instead of being masked by drops.
  const size_t limit = fd_.admission ? QueueLimit(t) : 0;
#if BDSM_OBS
  const uint64_t shed_before = t.counters.shed_ops;
#endif
  for (const UpdateOp& op : ops) {
    ++t.counters.offered_ops;
    if (limit > 0 && t.queue.size() >= limit) {
      // Shed, never block: the overflow is this tenant's, not the
      // whole front door's.
      ++t.counters.shed_ops;
      continue;
    }
    t.queue.push_back(Tenant::QueuedOp{op, tenant, next_seq_++, vclock_});
  }
#if BDSM_OBS
  if (obs::Enabled()) {
    BDSM_OBS_COUNT("tenant.offered_ops", ops.size());
    const uint64_t shed = t.counters.shed_ops - shed_before;
    if (shed > 0) {
      BDSM_OBS_COUNT("tenant.shed_ops", shed);
      obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
      if (tracer.enabled()) {
        // Instant on the formation clock: the shed decision happens at
        // Ingest, between formed batches, so it carries the current
        // virtual-clock stamp and zero duration.
        obs::TraceSpan span;
        span.name = "tenant.shed";
        span.domain = ToObsTraceDomain(inner_clock_);
        span.start_s = vclock_;
        span.dur_s = 0.0;
        span.batch = formed_batches_;
        span.tenant = t.name;
        span.detail = "ops=" + std::to_string(shed);
        tracer.Record(std::move(span));
      }
    }
    PublishTenantObs(t);
  }
#endif
}

size_t TenantFrontDoor::PendingOps() const {
  size_t n = 0;
  for (const Tenant& t : tenants_) n += t.queue.size();
  return n;
}

void TenantFrontDoor::RefillBucket(Tenant* t) {
  const double rate = t->policy.rate_ops_per_batch;
  if (rate <= 0.0) return;
  // Burst floor 1.0: a fractional rate must still accumulate to a
  // whole op, or a rate-limited queue could never drain.
  const double burst = std::max(
      1.0, t->policy.burst_ops > 0.0 ? t->policy.burst_ops : 2.0 * rate);
  t->tokens = std::min(burst, t->tokens + rate);
}

std::vector<TenantFrontDoor::Tenant::QueuedOp> TenantFrontDoor::SelectOps(
    size_t target, std::vector<size_t>* admitted_per_tenant) {
  std::vector<Tenant::QueuedOp> chosen;
  admitted_per_tenant->assign(tenants_.size(), 0);
  size_t remaining = target;

  if (!fd_.admission) {
    // No admission control: pure global FIFO — exactly the shared
    // undifferentiated queue the noisy-neighbor scenario indicts.
    while (remaining > 0) {
      Tenant* best = nullptr;
      size_t best_idx = 0;
      for (size_t i = 0; i < tenants_.size(); ++i) {
        Tenant& t = tenants_[i];
        if (t.queue.empty()) continue;
        if (best == nullptr || t.queue.front().seq < best->queue.front().seq) {
          best = &t;
          best_idx = i;
        }
      }
      if (best == nullptr) break;
      chosen.push_back(best->queue.front());
      best->queue.pop_front();
      ++(*admitted_per_tenant)[best_idx];
      --remaining;
    }
    return chosen;
  }

  // Degrade clamp: a tenant that blew its result budget contributes at
  // most a quarter of the target while clamped (floor 1 — degraded,
  // not starved).
  const size_t degraded_cap = std::max<size_t>(1, target / 4);
  static constexpr PriorityClass kClasses[] = {
      PriorityClass::kGold, PriorityClass::kSilver,
      PriorityClass::kBestEffort};
  for (PriorityClass cls : kClasses) {
    std::vector<size_t> idxs;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].policy.priority == cls && !tenants_[i].queue.empty()) {
        idxs.push_back(i);
      }
    }
    if (idxs.empty()) continue;
    // One op per tenant per visit: op-granular round-robin, so tenants
    // of equal class split the class's share evenly however unequal
    // their backlogs are.
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (size_t k = 0; k < idxs.size() && remaining > 0; ++k) {
        const size_t i = idxs[(rr_cursor_ + k) % idxs.size()];
        Tenant& t = tenants_[i];
        if (t.queue.empty()) continue;
        if (t.policy.rate_ops_per_batch > 0.0 && t.tokens < 1.0) continue;
        if (t.degrade_left > 0 && (*admitted_per_tenant)[i] >= degraded_cap) {
          continue;
        }
        chosen.push_back(t.queue.front());
        t.queue.pop_front();
        if (t.policy.rate_ops_per_batch > 0.0) t.tokens -= 1.0;
        ++(*admitted_per_tenant)[i];
        --remaining;
        progress = true;
      }
    }
  }
  ++rr_cursor_;

  // Ops a clamped tenant could have contributed (queue, tokens and
  // batch space all permitting) were *deferred*, not shed — count them
  // so the degradation story is visible in the accounting.
  for (size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    if (t.degrade_left == 0 || remaining == 0) continue;
    size_t could = t.queue.size();
    if (t.policy.rate_ops_per_batch > 0.0) {
      could = std::min(could, static_cast<size_t>(t.tokens));
    }
    t.counters.degraded_ops += std::min(could, remaining);
  }
  std::sort(chosen.begin(), chosen.end(),
            [](const Tenant::QueuedOp& a, const Tenant::QueuedOp& b) {
              return a.seq < b.seq;
            });
  return chosen;
}

bool TenantFrontDoor::PumpFormedBatch(FormedBatchStats* out) {
  const size_t pending_before = PendingOps();
  if (pending_before == 0) return false;

  // The batch tick: buckets refill exactly once per formed batch.
  for (Tenant& t : tenants_) RefillBucket(&t);

  std::vector<size_t> admitted;
  std::vector<Tenant::QueuedOp> chosen = SelectOps(target_ops_, &admitted);

  FormedBatchStats stats;
  stats.queue_depth_before = pending_before;
  stats.target_ops = target_ops_;
  stats.admitted_ops = chosen.size();

  if (!chosen.empty()) {
    UpdateBatch ops;
    ops.reserve(chosen.size());
    std::vector<double> max_wait(tenants_.size(), 0.0);
    for (const Tenant::QueuedOp& q : chosen) ops.push_back(q.op);

    BatchReport report = inner_->ProcessBatch(ops);
    const double latency = ClockSeconds(report);

    // Queue wait is virtual-clock: how much formed-batch service time
    // elapsed between an op's Ingest and its batch starting.
    for (const Tenant::QueuedOp& q : chosen) {
      const double wait = vclock_ - q.arrival_vclock;
      stats.queue_wait_seconds = std::max(stats.queue_wait_seconds, wait);
      max_wait[q.owner] = std::max(max_wait[q.owner], wait);
    }
    vclock_ += latency;
    AdaptTarget(latency);
    stats.service_seconds = latency;

    // Per-tenant results and budget enforcement.
    std::vector<size_t> tenant_matches(tenants_.size(), 0);
    for (const QueryReport& qr : report.queries) {
      stats.positive_matches += qr.num_positive;
      stats.negative_matches += qr.num_negative;
      if (qr.Truncated()) ++stats.truncated_queries;
      auto it = owner_of_.find(qr.id);
      const TenantId tid =
          it == owner_of_.end() ? kDefaultTenantId : it->second;
      Tenant& t = tenants_[tid];
      t.counters.positive_matches += qr.num_positive;
      t.counters.negative_matches += qr.num_negative;
      tenant_matches[tid] += qr.TotalMatches();
    }
    for (size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = tenants_[i];
      if (admitted[i] > 0) {
        t.counters.admitted_ops += admitted[i];
        ++t.counters.batches;
        t.service_seconds.push_back(latency);
        t.queue_wait_seconds.push_back(max_wait[i]);
      }
      if (fd_.admission && t.policy.result_budget > 0 &&
          tenant_matches[i] > t.policy.result_budget) {
        ++t.counters.over_budget_batches;
        t.degrade_left = fd_.degrade_batches;
      } else if (t.degrade_left > 0) {
        --t.degrade_left;
      }
    }
#if BDSM_OBS
    if (obs::Enabled()) {
      BDSM_OBS_COUNT("tenant.formed_batches", 1);
      BDSM_OBS_COUNT("tenant.admitted_ops", chosen.size());
      BDSM_OBS_GAUGE_SET("tenant.target_ops", target_ops_);
      obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
      if (tracer.enabled()) {
        // The formed batch occupies [vclock before, vclock after] on
        // the inner engine's clock; per-tenant admit spans share the
        // interval in their own lanes.
        const double start_v = vclock_ - latency;
        obs::TraceSpan form;
        form.name = "tenant.form";
        form.domain = ToObsTraceDomain(inner_clock_);
        form.start_s = start_v;
        form.dur_s = latency;
        form.batch = formed_batches_;
        form.detail = "target=" + std::to_string(stats.target_ops) +
                      " admitted=" + std::to_string(stats.admitted_ops);
        tracer.Record(std::move(form));
        for (size_t i = 0; i < tenants_.size(); ++i) {
          if (admitted[i] == 0) continue;
          obs::TraceSpan admit;
          admit.name = "tenant.admit";
          admit.domain = ToObsTraceDomain(inner_clock_);
          admit.start_s = start_v;
          admit.dur_s = latency;
          admit.batch = formed_batches_;
          admit.tenant = tenants_[i].name;
          admit.detail = "ops=" + std::to_string(admitted[i]);
          tracer.Record(std::move(admit));
        }
      }
      for (const Tenant& t : tenants_) PublishTenantObs(t);
    }
#endif
    ++formed_batches_;
  } else {
    // Every queued tenant is out of tokens this tick; the refill above
    // still happened, so forward progress is guaranteed next pump.
    for (Tenant& t : tenants_) {
      if (t.degrade_left > 0) --t.degrade_left;
    }
  }
  if (out != nullptr) *out = stats;
  return true;
}

void TenantFrontDoor::PublishTenantObs(const Tenant& t) const {
#if BDSM_OBS
  if (!obs::Enabled()) return;
  // Dynamic names can't use the static-cache macros; the per-name map
  // lookup is fine here — this runs per Ingest call / formed batch,
  // never per op.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  const std::string prefix = "tenant." + t.name + ".";
  reg.GetGauge(prefix + "offered_ops")
      .Set(static_cast<int64_t>(t.counters.offered_ops));
  reg.GetGauge(prefix + "admitted_ops")
      .Set(static_cast<int64_t>(t.counters.admitted_ops));
  reg.GetGauge(prefix + "shed_ops")
      .Set(static_cast<int64_t>(t.counters.shed_ops));
  reg.GetGauge(prefix + "degraded_ops")
      .Set(static_cast<int64_t>(t.counters.degraded_ops));
  reg.GetGauge(prefix + "queue_depth")
      .Set(static_cast<int64_t>(t.queue.size()));
#else
  (void)t;
#endif
}

double TenantFrontDoor::ClockSeconds(const BatchReport& report) const {
  switch (inner_clock_) {
    case ClockDomain::kModeledDevice:
      return report.ModeledSeconds(device_);
    case ClockDomain::kCriticalPath:
      return report.critical_path_seconds;
    case ClockDomain::kHostWall:
      return report.host_wall_seconds;
  }
  return report.host_wall_seconds;
}

void TenantFrontDoor::AdaptTarget(double latency) {
  latency_window_.push_back(latency);
  while (latency_window_.size() > fd_.slo_window) latency_window_.pop_front();
  if (fd_.slo_seconds <= 0.0) return;
  double worst = 0.0;
  for (double s : latency_window_) worst = std::max(worst, s);
  if (worst > fd_.slo_seconds) {
    // Multiplicative decrease: the recent tail breached the SLO.
    target_ops_ = std::max(fd_.batch_ops_min, target_ops_ / 2);
  } else {
    // Additive increase while the tail behaves.
    target_ops_ = std::min(fd_.batch_ops_max,
                           target_ops_ + fd_.batch_ops_min);
  }
}

TenantSnapshot TenantFrontDoor::Snapshot(TenantId tenant) const {
  GAMMA_CHECK_MSG(tenant < tenants_.size(), "unknown tenant id");
  const Tenant& t = tenants_[tenant];
  TenantSnapshot s;
  s.id = tenant;
  s.name = t.name;
  s.policy = t.policy;
  s.counters = t.counters;
  s.live_queries = t.live_queries;
  s.pending_ops = t.queue.size();
  s.service_seconds = t.service_seconds;
  s.queue_wait_seconds = t.queue_wait_seconds;
  return s;
}

double TenantFrontDoor::JainFairnessIndex() const {
  std::vector<double> shares;
  for (const Tenant& t : tenants_) {
    if (t.counters.offered_ops == 0) continue;
    shares.push_back(static_cast<double>(t.counters.admitted_ops) /
                     static_cast<double>(t.counters.offered_ops));
  }
  return JainIndex(shares);
}

// -------------------------------------------------- flat pass-through

void TenantFrontDoor::RunMatchPhase(const UpdateBatch& batch, bool positive,
                                    const BatchOptions& options,
                                    BatchReport* report) {
  if (!positive) {
    // The negative phase opens every batch (phase contract), so it is
    // the flat path's admission point and batch tick.  Under the
    // permissive default policy this is a no-op and the forwarded
    // batch is the caller's — the match-identical guarantee.
    Tenant& t = tenants_[kDefaultTenantId];
    t.counters.offered_ops += batch.size();
    flat_use_clamped_ = false;
    if (fd_.admission && t.policy.rate_ops_per_batch > 0.0) {
      RefillBucket(&t);
      const size_t allow = static_cast<size_t>(t.tokens);
      if (allow < batch.size()) {
        flat_clamped_.assign(batch.begin(),
                             batch.begin() + static_cast<ptrdiff_t>(allow));
        flat_use_clamped_ = true;
        t.tokens -= static_cast<double>(allow);
        t.counters.admitted_ops += allow;
        t.counters.shed_ops += batch.size() - allow;
      } else {
        t.tokens -= static_cast<double>(batch.size());
        t.counters.admitted_ops += batch.size();
      }
    } else {
      t.counters.admitted_ops += batch.size();
    }
  }
  const UpdateBatch& use = flat_use_clamped_ ? flat_clamped_ : batch;
  inner_->RunMatchPhase(use, positive, options, report);
  if (positive) {
    // Batch end.  FlushPhase has not run for this phase yet, so a
    // query's final count is its flushed count plus the unflushed tail.
    ++tenants_[kDefaultTenantId].counters.batches;
    std::vector<size_t> tenant_matches(tenants_.size(), 0);
    for (const QueryReport& qr : report->queries) {
      const size_t pos =
          qr.num_positive + (qr.positive_matches.size() - qr.streamed_positive);
      const size_t neg =
          qr.num_negative + (qr.negative_matches.size() - qr.streamed_negative);
      auto it = owner_of_.find(qr.id);
      const TenantId tid =
          it == owner_of_.end() ? kDefaultTenantId : it->second;
      tenants_[tid].counters.positive_matches += pos;
      tenants_[tid].counters.negative_matches += neg;
      tenant_matches[tid] += pos + neg;
    }
    for (size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = tenants_[i];
      if (fd_.admission && t.policy.result_budget > 0 &&
          tenant_matches[i] > t.policy.result_budget) {
        ++t.counters.over_budget_batches;
        t.degrade_left = fd_.degrade_batches;
      }
    }
  }
}

void TenantFrontDoor::RunUpdatePhase(const UpdateBatch& batch,
                                     const BatchOptions& options,
                                     BatchReport* report) {
  const UpdateBatch& use = flat_use_clamped_ ? flat_clamped_ : batch;
  inner_->RunUpdatePhase(use, options, report);
}

// ------------------------------------------------------- registration

void RegisterTenantEngine(EngineRegistry* registry) {
  EngineDef def;
  def.example = "tenant(sharded(gamma, shards=4), tenants=4, slo=0.01)";
  def.min_children = 1;
  def.max_children = 1;
  def.option_keys = {
      {"tenants", "tenants to pre-register (t0..tN-1, default policy)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n > 4096) return false;
         o->front_door.preregister_tenants = n;
         return true;
       }},
      {"admission", "admission control master switch (on/off)",
       [](const std::string& v, EngineOptions* o) {
         bool b;
         if (!ParseBoolValue(v, &b)) return false;
         o->front_door.admission = b;
         return true;
       }},
      {"slo", "target per-batch latency in seconds (0 = fixed size)",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->front_door.slo_seconds = s;
         return true;
       }},
      {"batch_min", "lower bound of the adaptive target batch size (ops)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->front_door.batch_ops_min = n;
         return true;
       }},
      {"batch_max", "upper bound of the adaptive target batch size (ops)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->front_door.batch_ops_max = n;
         return true;
       }},
      {"batch_init", "initial target batch size (ops)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->front_door.batch_ops_init = n;
         return true;
       }},
      {"window", "recent-latency window of the SLO controller (batches)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->front_door.slo_window = n;
         return true;
       }},
      {"queue_limit", "default per-tenant pending-op bound (0 = unbounded)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->front_door.queue_limit_ops = n;
         return true;
       }},
      {"degrade", "batches a tenant stays clamped after a blown budget",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->front_door.degrade_batches = n;
         return true;
       }},
      {"rate", "default token-bucket refill, ops per formed batch (0 = off)",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->front_door.default_policy.rate_ops_per_batch = s;
         return true;
       }},
      {"burst", "default token-bucket capacity (0 = 2x rate)",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->front_door.default_policy.burst_ops = s;
         return true;
       }},
      {"result_budget", "default per-batch result budget (0 = unlimited)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->front_door.default_policy.result_budget = n;
         return true;
       }},
  };
  def.factory = [](const EngineSpec& spec, const LabeledGraph& g,
                   const EngineOptions& options) {
    return std::unique_ptr<Engine>(
        new TenantFrontDoor(spec.children.front(), g, options));
  };
  registry->Register("tenant", std::move(def));
}

}  // namespace bdsm::serve
