#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "serve/tenant_front_door.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

namespace bdsm::serve {

ShardedEngine::ShardedEngine(const EngineSpec& inner, size_t num_shards,
                             const LabeledGraph& g,
                             const EngineOptions& options)
    : pool_(options.serve_threads > 0 ? options.serve_threads : num_shards),
      queue_capacity_(options.serve_queue_capacity) {
  GAMMA_CHECK_MSG(num_shards > 0, "ShardedEngine needs at least one shard");
  GAMMA_CHECK_MSG(queue_capacity_ > 0, "ingest queue needs capacity >= 1");
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.engine = MakeEngine(inner, g, options);
    shards_.push_back(std::move(shard));
  }
  // Compose the canonical spec from the *built* inner engine (aliases
  // and legacy sugar resolved by the registry), not the raw argument,
  // materializing every non-default knob of this layer — whether it
  // arrived inline (threads=2) or via EngineOptions — so Name() and
  // Describe().canonical_spec fully identify the configuration (they
  // are the provenance key bench JSON rows are diffed by).
  const EngineOptions defaults;
  EngineSpec self;
  self.name = "sharded";
  self.children.push_back(
      EngineSpec::Parse(shards_.front().engine->Describe().canonical_spec));
  self.options.emplace_back("shards", std::to_string(num_shards));
  if (options.serve_threads != defaults.serve_threads) {
    self.options.emplace_back("threads",
                              std::to_string(options.serve_threads));
  }
  if (options.serve_queue_capacity != defaults.serve_queue_capacity) {
    self.options.emplace_back("queue", std::to_string(queue_capacity_));
  }
  name_ = self.ToString();
  StampCanonicalSpec(name_);
  shard_busy_seconds_.assign(num_shards, 0.0);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s].lane = std::make_unique<FanInSink::Lane>(
        &fanin_, [this, s](QueryId inner_id) {
          const auto& map = shards_[s].to_public;
          auto it = map.find(inner_id);
          return it == map.end() ? inner_id : it->second;
        });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ShardedEngine::ShardedEngine(const std::string& inner, size_t num_shards,
                             const LabeledGraph& g,
                             const EngineOptions& options)
    : ShardedEngine(EngineSpec::Parse(inner), num_shards, g, options) {}

EngineInfo ShardedEngine::Describe() const {
  EngineInfo inner = shards_.front().engine->Describe();
  EngineInfo info;
  info.canonical_spec = CanonicalSpecOrName();
  // Device-modeled inner engines stay on the modeled clock (the merge
  // reproduces the unsharded launch accounting); CPU inner engines run
  // shard-concurrently, so the honest clock is the critical path.
  info.clock = inner.clock == ClockDomain::kModeledDevice
                   ? ClockDomain::kModeledDevice
                   : ClockDomain::kCriticalPath;
  info.supports_remove_query = inner.supports_remove_query;
  info.tick_seconds = inner.tick_seconds;
  info.num_shards = shards_.size();
  info.inner_spec = inner.canonical_spec;
  info.supports_snapshot = inner.supports_snapshot;
  return info;
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  dispatcher_.join();
}

QueryId ShardedEngine::AddQuery(const QueryGraph& q) {
  QueryId public_id = next_id_++;
  size_t shard = public_id % shards_.size();
  QueryId inner_id = shards_[shard].engine->AddQuery(q);
  shards_[shard].to_public[inner_id] = public_id;
  slots_.push_back(SlotRef{public_id, shard, inner_id});
  return public_id;
}

bool ShardedEngine::RemoveQuery(QueryId id) {
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->public_id != id) continue;
    Shard& shard = shards_[it->shard];
    GAMMA_CHECK(shard.engine->RemoveQuery(it->inner_id));
    shard.to_public.erase(it->inner_id);
    slots_.erase(it);
    return true;
  }
  return false;
}

std::vector<QueryId> ShardedEngine::QueryIds() const {
  std::vector<QueryId> ids;
  ids.reserve(slots_.size());
  for (const SlotRef& ref : slots_) ids.push_back(ref.public_id);
  return ids;
}

std::vector<RegisteredQuery> ShardedEngine::RegisteredQueries() const {
  // One capture per shard, indexed by inner id (this sits on the
  // snapshot path, which checkpoint policies may hit every batch).
  std::vector<std::unordered_map<QueryId, QueryGraph>> by_inner(
      shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (RegisteredQuery& rq : shards_[s].engine->RegisteredQueries()) {
      by_inner[s].emplace(rq.id, std::move(rq.query));
    }
  }
  std::vector<RegisteredQuery> out;
  out.reserve(slots_.size());
  for (const SlotRef& ref : slots_) {
    auto it = by_inner[ref.shard].find(ref.inner_id);
    if (it == by_inner[ref.shard].end()) {
      return {};  // inner engine cannot capture its set
    }
    // The public id is what the snapshot records.
    out.push_back(RegisteredQuery{ref.public_id, std::move(it->second)});
  }
  return out;
}

bool ShardedEngine::RestoreQuery(const QueryGraph& q, QueryId id) {
  if (id < next_id_) return false;
  // Round-robin placement is keyed on the public id, so advancing the
  // counter to the snapshot id reproduces the original shard
  // assignment exactly (gaps from removed queries included).
  next_id_ = id;
  return AddQuery(q) == id;
}

size_t ShardedEngine::ShardOf(QueryId id) const {
  for (const SlotRef& ref : slots_) {
    if (ref.public_id == id) return ref.shard;
  }
  return kInvalidShard;
}

void ShardedEngine::BeginBatch(const BatchOptions& options) {
  if (poisoned_.load(std::memory_order_relaxed)) {
    throw std::runtime_error(
        "ShardedEngine poisoned: an earlier batch failed mid-flight "
        "and shard replicas may have diverged");
  }
  fanin_.set_downstream(options.sink);
  for (Shard& shard : shards_) {
    // InitReport only rebuilds the query slots; the aggregates must be
    // zeroed explicitly since scratch is reused across batches.
    shard.scratch = BatchReport{};
    shard.engine->InitReport(&shard.scratch);
  }
}

double ShardedEngine::ForEachShard(
    const BatchOptions& options, const char* phase_name,
    const std::function<void(Shard&, const BatchOptions&)>& phase_body) {
  std::vector<double> phase_seconds(shards_.size(), 0.0);
  try {
    pool_.ParallelFor(shards_.size(), [&](size_t s) {
      // Thread-CPU, not wall: each shard task runs on one worker, and
      // its cost must not inflate when workers share cores (see
      // ShardBusySeconds docs).
      ThreadCpuTimer timer;
      Shard& shard = shards_[s];
      // A nested sharded inner engine does its work on its *own* pool
      // (this worker blocks on its barrier, accruing ~no thread-CPU),
      // reporting the cost as scratch critical path instead — charge
      // the delta so nesting keeps the clock honest.
      double inner_critical_before = shard.scratch.critical_path_seconds;
      BatchOptions inner = options;
      inner.sink = options.sink != nullptr ? shard.lane.get() : nullptr;
      phase_body(shard, inner);
      // Stream this phase's new matches through the shard's lane and
      // maintain the shard-local counts, exactly as the unsharded
      // driver would between phases.
      Engine::FlushPhase(inner, &shard.scratch);
      phase_seconds[s] =
          timer.ElapsedSeconds() +
          (shard.scratch.critical_path_seconds - inner_critical_before);
    });
  } catch (...) {
    // A shard failing mid-phase may leave the replicas diverged (some
    // applied this batch's work, some did not) — poison on every drive
    // path, not just the dispatcher's.
    poisoned_.store(true, std::memory_order_relaxed);
    throw;
  }
  // Serving stats: each phase is a barrier, so its concurrent cost is
  // the slowest shard's (the critical path a host with enough cores
  // pays); per-shard busy time accumulates for utilization views.
  double slowest = 0.0;
  double busy = 0.0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_busy_seconds_[s] += phase_seconds[s];
    busy += phase_seconds[s];
    slowest = std::max(slowest, phase_seconds[s]);
  }
  critical_path_seconds_ += slowest;
#if BDSM_OBS
  if (obs::Enabled()) {
    BDSM_OBS_COUNT_US("serve.critical_path_us", slowest);
    BDSM_OBS_COUNT_US("serve.shards.busy_us", busy);
    obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
    if (tracer.enabled()) {
      // Per-shard fan-out lanes on the critical-path clock: all shards
      // of a phase start together (barrier semantics), the slowest one
      // advances the cursor — mirroring critical_path_seconds_.
      for (size_t s = 0; s < shards_.size(); ++s) {
        obs::TraceSpan span;
        span.name = "serve.shard";
        span.domain = obs::Domain::kCriticalPath;
        span.start_s = obs_shard_cursor_;
        span.dur_s = phase_seconds[s];
        span.batch = obs_batch_seq_;
        span.shard = static_cast<int32_t>(s);
        span.detail = phase_name;
        tracer.Record(std::move(span));
      }
      obs_shard_cursor_ += slowest;
    }
  }
#else
  (void)phase_name;
  (void)busy;
#endif
  return slowest;
}

void ShardedEngine::ResetServingStats() {
  shard_busy_seconds_.assign(shards_.size(), 0.0);
  critical_path_seconds_ = 0.0;
}

void ShardedEngine::MergeIntoReport(const BatchOptions& options,
                                    BatchReport* report) {
  GAMMA_CHECK(report->queries.size() == slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const SlotRef& ref = slots_[i];
    QueryReport& out = report->queries[i];  // InitReport order
    GAMMA_CHECK(out.id == ref.public_id);
    const QueryReport* in = shards_[ref.shard].scratch.Find(ref.inner_id);
    GAMMA_CHECK(in != nullptr);

    out.num_positive = in->num_positive;
    out.num_negative = in->num_negative;
    out.timed_out = in->timed_out;
    out.overflowed = in->overflowed;
    out.update_stats = in->update_stats;
    out.match_stats = in->match_stats;
    out.preprocess_host_seconds = in->preprocess_host_seconds;
    out.host_wall_seconds = in->host_wall_seconds;
    if (options.materialize) {
      // Shard scratch accumulates across phases; append only the tail
      // this merge hasn't seen yet (the public vector's size tracks it).
      out.positive_matches.insert(
          out.positive_matches.end(),
          in->positive_matches.begin() +
              static_cast<ptrdiff_t>(out.positive_matches.size()),
          in->positive_matches.end());
      out.negative_matches.insert(
          out.negative_matches.end(),
          in->negative_matches.begin() +
              static_cast<ptrdiff_t>(out.negative_matches.size()),
          in->negative_matches.end());
    }
    // The fan-in lanes already streamed and counted everything merged
    // here; advance the flush markers so the outer FlushPhase neither
    // re-counts nor re-delivers.
    out.streamed_positive = out.positive_matches.size();
    out.streamed_negative = out.negative_matches.size();
  }

  // Aggregates, rebuilt from the shard aggregates in shard-index order.
  // DeviceStats accumulation is commutative (sums/maxes/ors), so for
  // per-query-independent inner engines this equals the unsharded
  // engine's query-order accumulation bit for bit.
  report->update_stats = DeviceStats{};
  report->match_stats = DeviceStats{};
  report->preprocess_host_seconds = 0.0;
  for (const Shard& shard : shards_) {
    report->update_stats.MergeSequential(shard.scratch.update_stats);
    report->match_stats.MergeSequential(shard.scratch.match_stats);
    report->preprocess_host_seconds +=
        shard.scratch.preprocess_host_seconds;
  }
}

void ShardedEngine::RunMatchPhase(const UpdateBatch& batch, bool positive,
                                  const BatchOptions& options,
                                  BatchReport* report) {
  // The negative phase is always the first phase of a batch (both
  // Engine::ProcessBatch and StreamPipeline run negative -> update ->
  // positive), so it doubles as the per-batch reset point.
  if (!positive) BeginBatch(options);
  report->critical_path_seconds += ForEachShard(
      options, positive ? "match+" : "match-",
      [&](Shard& shard, const BatchOptions& inner) {
        shard.engine->RunMatchPhase(batch, positive, inner, &shard.scratch);
      });
  MergeIntoReport(options, report);
  // The positive phase closes a batch: every shard replica has applied
  // it and the merged report is final modulo wall timing — the batch
  // barrier the coordinated snapshot design requires.  (The WAL
  // receives the sanitized batch; re-sanitizing it on replay against
  // the same replica state is the identity.)
  if (positive && checkpointer_ != nullptr) {
    checkpointer_->OnBatchApplied(*this, batch, *report);
  }
}

void ShardedEngine::RunUpdatePhase(const UpdateBatch& batch,
                                   const BatchOptions& options,
                                   BatchReport* report) {
  // Every shard applies the batch to its own replica, keeping all
  // host graphs (and any late AddQuery) in lockstep.
  report->critical_path_seconds += ForEachShard(
      options, "update", [&](Shard& shard, const BatchOptions& inner) {
        shard.engine->RunUpdatePhase(batch, inner, &shard.scratch);
      });
  MergeIntoReport(options, report);
}

std::future<BatchReport> ShardedEngine::SubmitBatch(UpdateBatch batch,
                                                    BatchOptions options) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_space_.wait(lock, [this] {
    return queue_.size() < queue_capacity_ || stopping_;
  });
  GAMMA_CHECK_MSG(!stopping_, "SubmitBatch on a stopping engine");
  PendingBatch pending;
  pending.batch = std::move(batch);
  pending.options = options;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.depth_at_submit = queue_.size();
  std::future<BatchReport> result = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  lock.unlock();
  queue_ready_.notify_one();
  return result;
}

std::optional<std::future<BatchReport>> ShardedEngine::TrySubmitBatch(
    UpdateBatch batch, BatchOptions options) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (queue_.size() >= queue_capacity_ || stopping_) return std::nullopt;
  PendingBatch pending;
  pending.batch = std::move(batch);
  pending.options = options;
  pending.enqueued = std::chrono::steady_clock::now();
  pending.depth_at_submit = queue_.size();
  std::future<BatchReport> result = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  lock.unlock();
  queue_ready_.notify_one();
  return result;
}

size_t ShardedEngine::PendingBatches() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void ShardedEngine::DispatchLoop() {
  for (;;) {
    PendingBatch pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      // On shutdown the queue is drained first: every accepted batch
      // still gets processed and its future fulfilled.
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_.notify_one();
    // A failing batch (e.g. bad_alloc out of a shard) must fail its own
    // future, not take down the dispatcher and the process with it.
    // It also poisons the engine: the batch may have been applied to
    // some shard replicas and not others, so serving on would produce
    // silently inconsistent merges.
    try {
      if (poisoned_.load(std::memory_order_relaxed)) {
        throw std::runtime_error(
            "ShardedEngine poisoned: an earlier batch failed mid-flight "
            "and shard replicas may have diverged");
      }
      // Queue wait ends when the dispatcher picks the batch up, before
      // processing starts — the pure ingest-queue component.
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        pending.enqueued)
              .count();
#if BDSM_OBS
      if (obs::Enabled()) {
        BDSM_OBS_COUNT("serve.ingest.batches", 1);
        BDSM_OBS_COUNT_US("serve.ingest.queue_wait_us", waited);
        BDSM_OBS_GAUGE_SET("serve.ingest.queue_depth",
                           static_cast<int64_t>(pending.depth_at_submit));
        obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
        if (tracer.enabled()) {
          obs::TraceSpan span;
          span.name = "serve.ingest.wait";
          span.domain = obs::Domain::kHostWall;
          span.start_s = tracer.HostNowSeconds() - waited;
          span.dur_s = waited;
          span.batch = obs_batch_seq_;
          tracer.Record(std::move(span));
        }
      }
#endif
      BatchReport report = ProcessBatch(pending.batch, pending.options);
      report.queue_wait_seconds = waited;
      report.queue_depth = pending.depth_at_submit;
      pending.promise.set_value(std::move(report));
    } catch (...) {
      poisoned_.store(true, std::memory_order_relaxed);
      pending.promise.set_exception(std::current_exception());
    }
  }
}

void RegisterServeEngines(EngineRegistry* registry) {
  EngineDef def;
  def.example = "sharded(gamma, shards=8)";
  def.min_children = 1;
  def.max_children = 1;
  def.option_keys = {
      {"shards", "inner engine instances to partition queries across",
       // Structural key: consumed by the factory below, validated here.
       [](const std::string& v, EngineOptions*) {
         size_t n;
         return ParseSizeValue(v, &n) && n >= 1 &&
                n <= 4096;  // sanity bound, not a target
       }},
      {"threads", "phase fan-out worker threads (0 = one per shard)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->serve_threads = n;
         return true;
       }},
      {"queue", "SubmitBatch ingest queue capacity (back-pressure bound)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0) return false;
         o->serve_queue_capacity = n;
         return true;
       }},
  };
  def.factory = [](const EngineSpec& spec, const LabeledGraph& g,
                   const EngineOptions& options) {
    size_t num_shards = ShardedEngine::kDefaultShards;
    if (const std::string* v = spec.FindOption("shards")) {
      ParseSizeValue(*v, &num_shards);  // validated by the key table
    }
    return std::unique_ptr<Engine>(
        new ShardedEngine(spec.children.front(), num_shards, g, options));
  };
  registry->Register("sharded", std::move(def));
  RegisterTenantEngine(registry);
}

}  // namespace bdsm::serve
