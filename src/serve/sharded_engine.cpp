#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/common.hpp"
#include "util/timer.hpp"

namespace bdsm::serve {

std::optional<ShardedSpec> ParseShardedSpec(const std::string& spec) {
  if (spec.empty()) return std::nullopt;
  std::string inner = spec;
  size_t num_shards = ShardedEngine::kDefaultShards;
  size_t at = spec.rfind('@');
  if (at != std::string::npos) {
    inner = spec.substr(0, at);
    std::string count = spec.substr(at + 1);
    if (count.empty()) return std::nullopt;
    size_t n = 0;
    for (char c : count) {
      if (c < '0' || c > '9') return std::nullopt;
      n = n * 10 + static_cast<size_t>(c - '0');
      if (n > 4096) return std::nullopt;  // sanity bound, not a target
    }
    if (n == 0) return std::nullopt;
    num_shards = n;
  }
  // No nesting of composite specs.
  if (inner.empty() || inner.find(':') != std::string::npos ||
      inner.find('@') != std::string::npos) {
    return std::nullopt;
  }
  return ShardedSpec{std::move(inner), num_shards};
}

ShardedEngine::ShardedEngine(const std::string& inner, size_t num_shards,
                             const LabeledGraph& g,
                             const EngineOptions& options)
    : pool_(options.serve_threads > 0 ? options.serve_threads : num_shards),
      queue_capacity_(options.serve_queue_capacity) {
  GAMMA_CHECK_MSG(num_shards > 0, "ShardedEngine needs at least one shard");
  GAMMA_CHECK_MSG(queue_capacity_ > 0, "ingest queue needs capacity >= 1");
  name_ = "sharded:" + inner + "@" + std::to_string(num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.engine = MakeEngine(inner, g, options);
    shards_.push_back(std::move(shard));
  }
  shard_busy_seconds_.assign(num_shards, 0.0);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s].lane = std::make_unique<FanInSink::Lane>(
        &fanin_, [this, s](QueryId inner_id) {
          const auto& map = shards_[s].to_public;
          auto it = map.find(inner_id);
          return it == map.end() ? inner_id : it->second;
        });
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  dispatcher_.join();
}

QueryId ShardedEngine::AddQuery(const QueryGraph& q) {
  QueryId public_id = next_id_++;
  size_t shard = public_id % shards_.size();
  QueryId inner_id = shards_[shard].engine->AddQuery(q);
  shards_[shard].to_public[inner_id] = public_id;
  slots_.push_back(SlotRef{public_id, shard, inner_id});
  return public_id;
}

bool ShardedEngine::RemoveQuery(QueryId id) {
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->public_id != id) continue;
    Shard& shard = shards_[it->shard];
    GAMMA_CHECK(shard.engine->RemoveQuery(it->inner_id));
    shard.to_public.erase(it->inner_id);
    slots_.erase(it);
    return true;
  }
  return false;
}

std::vector<QueryId> ShardedEngine::QueryIds() const {
  std::vector<QueryId> ids;
  ids.reserve(slots_.size());
  for (const SlotRef& ref : slots_) ids.push_back(ref.public_id);
  return ids;
}

size_t ShardedEngine::ShardOf(QueryId id) const {
  for (const SlotRef& ref : slots_) {
    if (ref.public_id == id) return ref.shard;
  }
  return kInvalidShard;
}

void ShardedEngine::BeginBatch(const BatchOptions& options) {
  if (poisoned_.load(std::memory_order_relaxed)) {
    throw std::runtime_error(
        "ShardedEngine poisoned: an earlier batch failed mid-flight "
        "and shard replicas may have diverged");
  }
  fanin_.set_downstream(options.sink);
  for (Shard& shard : shards_) {
    // InitReport only rebuilds the query slots; the aggregates must be
    // zeroed explicitly since scratch is reused across batches.
    shard.scratch = BatchReport{};
    shard.engine->InitReport(&shard.scratch);
  }
}

void ShardedEngine::ForEachShard(
    const BatchOptions& options,
    const std::function<void(Shard&, const BatchOptions&)>& phase_body) {
  std::vector<double> phase_seconds(shards_.size(), 0.0);
  try {
    pool_.ParallelFor(shards_.size(), [&](size_t s) {
      // Thread-CPU, not wall: each shard task runs on one worker, and
      // its cost must not inflate when workers share cores (see
      // ShardBusySeconds docs).
      ThreadCpuTimer timer;
      Shard& shard = shards_[s];
      BatchOptions inner = options;
      inner.sink = options.sink != nullptr ? shard.lane.get() : nullptr;
      phase_body(shard, inner);
      // Stream this phase's new matches through the shard's lane and
      // maintain the shard-local counts, exactly as the unsharded
      // driver would between phases.
      Engine::FlushPhase(inner, &shard.scratch);
      phase_seconds[s] = timer.ElapsedSeconds();
    });
  } catch (...) {
    // A shard failing mid-phase may leave the replicas diverged (some
    // applied this batch's work, some did not) — poison on every drive
    // path, not just the dispatcher's.
    poisoned_.store(true, std::memory_order_relaxed);
    throw;
  }
  // Serving stats: each phase is a barrier, so its concurrent cost is
  // the slowest shard's (the critical path a host with enough cores
  // pays); per-shard busy time accumulates for utilization views.
  double slowest = 0.0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_busy_seconds_[s] += phase_seconds[s];
    slowest = std::max(slowest, phase_seconds[s]);
  }
  critical_path_seconds_ += slowest;
}

void ShardedEngine::ResetServingStats() {
  shard_busy_seconds_.assign(shards_.size(), 0.0);
  critical_path_seconds_ = 0.0;
}

void ShardedEngine::MergeIntoReport(const BatchOptions& options,
                                    BatchReport* report) {
  GAMMA_CHECK(report->queries.size() == slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const SlotRef& ref = slots_[i];
    QueryReport& out = report->queries[i];  // InitReport order
    GAMMA_CHECK(out.id == ref.public_id);
    const QueryReport* in = shards_[ref.shard].scratch.Find(ref.inner_id);
    GAMMA_CHECK(in != nullptr);

    out.num_positive = in->num_positive;
    out.num_negative = in->num_negative;
    out.timed_out = in->timed_out;
    out.overflowed = in->overflowed;
    out.update_stats = in->update_stats;
    out.match_stats = in->match_stats;
    out.preprocess_host_seconds = in->preprocess_host_seconds;
    out.host_wall_seconds = in->host_wall_seconds;
    if (options.materialize) {
      // Shard scratch accumulates across phases; append only the tail
      // this merge hasn't seen yet (the public vector's size tracks it).
      out.positive_matches.insert(
          out.positive_matches.end(),
          in->positive_matches.begin() +
              static_cast<ptrdiff_t>(out.positive_matches.size()),
          in->positive_matches.end());
      out.negative_matches.insert(
          out.negative_matches.end(),
          in->negative_matches.begin() +
              static_cast<ptrdiff_t>(out.negative_matches.size()),
          in->negative_matches.end());
    }
    // The fan-in lanes already streamed and counted everything merged
    // here; advance the flush markers so the outer FlushPhase neither
    // re-counts nor re-delivers.
    out.streamed_positive = out.positive_matches.size();
    out.streamed_negative = out.negative_matches.size();
  }

  // Aggregates, rebuilt from the shard aggregates in shard-index order.
  // DeviceStats accumulation is commutative (sums/maxes/ors), so for
  // per-query-independent inner engines this equals the unsharded
  // engine's query-order accumulation bit for bit.
  report->update_stats = DeviceStats{};
  report->match_stats = DeviceStats{};
  report->preprocess_host_seconds = 0.0;
  for (const Shard& shard : shards_) {
    report->update_stats.MergeSequential(shard.scratch.update_stats);
    report->match_stats.MergeSequential(shard.scratch.match_stats);
    report->preprocess_host_seconds +=
        shard.scratch.preprocess_host_seconds;
  }
}

void ShardedEngine::RunMatchPhase(const UpdateBatch& batch, bool positive,
                                  const BatchOptions& options,
                                  BatchReport* report) {
  // The negative phase is always the first phase of a batch (both
  // Engine::ProcessBatch and StreamPipeline run negative -> update ->
  // positive), so it doubles as the per-batch reset point.
  if (!positive) BeginBatch(options);
  ForEachShard(options, [&](Shard& shard, const BatchOptions& inner) {
    shard.engine->RunMatchPhase(batch, positive, inner, &shard.scratch);
  });
  MergeIntoReport(options, report);
}

void ShardedEngine::RunUpdatePhase(const UpdateBatch& batch,
                                   const BatchOptions& options,
                                   BatchReport* report) {
  // Every shard applies the batch to its own replica, keeping all
  // host graphs (and any late AddQuery) in lockstep.
  ForEachShard(options, [&](Shard& shard, const BatchOptions& inner) {
    shard.engine->RunUpdatePhase(batch, inner, &shard.scratch);
  });
  MergeIntoReport(options, report);
}

std::future<BatchReport> ShardedEngine::SubmitBatch(UpdateBatch batch,
                                                    BatchOptions options) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_space_.wait(lock, [this] {
    return queue_.size() < queue_capacity_ || stopping_;
  });
  GAMMA_CHECK_MSG(!stopping_, "SubmitBatch on a stopping engine");
  PendingBatch pending;
  pending.batch = std::move(batch);
  pending.options = options;
  std::future<BatchReport> result = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  lock.unlock();
  queue_ready_.notify_one();
  return result;
}

std::optional<std::future<BatchReport>> ShardedEngine::TrySubmitBatch(
    UpdateBatch batch, BatchOptions options) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (queue_.size() >= queue_capacity_ || stopping_) return std::nullopt;
  PendingBatch pending;
  pending.batch = std::move(batch);
  pending.options = options;
  std::future<BatchReport> result = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  lock.unlock();
  queue_ready_.notify_one();
  return result;
}

size_t ShardedEngine::PendingBatches() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void ShardedEngine::DispatchLoop() {
  for (;;) {
    PendingBatch pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      // On shutdown the queue is drained first: every accepted batch
      // still gets processed and its future fulfilled.
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_.notify_one();
    // A failing batch (e.g. bad_alloc out of a shard) must fail its own
    // future, not take down the dispatcher and the process with it.
    // It also poisons the engine: the batch may have been applied to
    // some shard replicas and not others, so serving on would produce
    // silently inconsistent merges.
    try {
      if (poisoned_.load(std::memory_order_relaxed)) {
        throw std::runtime_error(
            "ShardedEngine poisoned: an earlier batch failed mid-flight "
            "and shard replicas may have diverged");
      }
      pending.promise.set_value(
          ProcessBatch(pending.batch, pending.options));
    } catch (...) {
      poisoned_.store(true, std::memory_order_relaxed);
      pending.promise.set_exception(std::current_exception());
    }
  }
}

void RegisterServeEngines(EngineRegistry* registry) {
  registry->RegisterPrefix(
      "sharded",
      [](const std::string& rest, const LabeledGraph& g,
         const EngineOptions& options) {
        std::optional<ShardedSpec> spec = ParseShardedSpec(rest);
        GAMMA_CHECK_MSG(spec.has_value(), "bad sharded engine spec");
        return std::unique_ptr<Engine>(new ShardedEngine(
            spec->inner, spec->num_shards, g, options));
      },
      [](const std::string& rest) {
        std::optional<ShardedSpec> spec = ParseShardedSpec(rest);
        return spec.has_value() &&
               EngineRegistry::Instance().Has(spec->inner);
      });
}

}  // namespace bdsm::serve
