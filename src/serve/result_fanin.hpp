/// \file result_fanin.hpp
/// Thread-safe fan-in of many streaming producers into one ResultSink.
///
/// The Engine streaming contract (core/engine.hpp) delivers matches on
/// the caller's thread; user sinks are therefore written single-threaded.
/// Under sharding, N shard workers stream concurrently, so their
/// deliveries must be funneled through one serialization point before
/// they reach the user's sink.  FanInSink is that point: it owns one
/// mutex and a downstream pointer, and hands each producer a `Lane` — a
/// ResultSink that (1) remaps the producer's engine-local QueryIds to
/// the ids the consumer knows, and (2) takes the shared lock around
/// every downstream OnMatch.
///
/// Ordering guarantees: matches from ONE lane arrive downstream in the
/// order that lane emitted them (per-query emission order is preserved,
/// exactly as for an unsharded engine).  Matches from different lanes
/// interleave arbitrarily — cross-shard delivery order is scheduling-
/// dependent, which is inherent to concurrent serving.  Counts and
/// per-query sequences are deterministic; only the cross-query
/// interleaving is not.
///
/// Lifetime: lanes hold a pointer to their FanInSink, which must outlive
/// them; the downstream sink must outlive the batch being streamed.  A
/// null downstream turns every lane into a no-op, so one set of lanes
/// serves both streaming and non-streaming batches.
#pragma once

#include <functional>
#include <mutex>
#include <utility>

#include "core/engine.hpp"

namespace bdsm::serve {

/// Serialization point for concurrent streaming producers.
class FanInSink {
 public:
  explicit FanInSink(ResultSink* downstream = nullptr)
      : downstream_(downstream) {}

  /// Retargets the fan-in (e.g. per batch).  Must not race with active
  /// lane deliveries; ShardedEngine calls it only between batches.
  void set_downstream(ResultSink* sink) { downstream_ = sink; }
  ResultSink* downstream() const { return downstream_; }

  /// One producer's entry into the fan-in.  `remap` translates the
  /// producer's QueryIds into the consumer's (identity when empty).
  class Lane final : public ResultSink {
   public:
    Lane(FanInSink* parent, std::function<QueryId(QueryId)> remap)
        : parent_(parent), remap_(std::move(remap)) {}

    void OnMatch(QueryId query, const MatchRecord& m) override {
      ResultSink* down = parent_->downstream_;
      if (down == nullptr) return;
      QueryId mapped = remap_ ? remap_(query) : query;
      std::lock_guard<std::mutex> lock(parent_->mu_);
      down->OnMatch(mapped, m);
    }

   private:
    FanInSink* parent_;
    std::function<QueryId(QueryId)> remap_;
  };

 private:
  std::mutex mu_;
  ResultSink* downstream_;
};

}  // namespace bdsm::serve
