/// \file sharded_engine.hpp
/// Sharded concurrent serving: one Engine facade over N inner engines.
///
/// The serving subsystem's answer to heavy multi-query traffic: a
/// ShardedEngine partitions its registered queries across N inner
/// engine instances ("shards"), each built through the EngineRegistry —
/// any registry name can back a shard ("gamma", "multi", a CSM
/// baseline).  Every batch's processing phases run across all shards
/// concurrently on a persistent ThreadPool, and the per-shard
/// BatchReports are merged, in fixed shard order, into one report with
/// stable engine-scoped QueryIds — so callers see exactly the Engine
/// contract they already know, at shard-parallel wall-clock cost.
///
/// Correctness model (tested in serve_test.cpp):
///  * Every shard owns a full replica of the evolving host graph; each
///    batch's update phase advances all replicas identically, so any
///    shard can answer host_graph() and late AddQuery calls see the
///    same evolved state an unsharded engine would show.
///  * For inner engines that process queries independently ("gamma" and
///    the five CSM baselines), the merged report is bit-identical to
///    the unsharded engine's: per-query match vectors (order included),
///    counts, truncation flags, and deterministic device stats, plus
///    the aggregate device stats (DeviceStats accumulation is
///    commutative, so shard-order merging equals query-order merging).
///  * For "multi", which fuses all of a shard's queries into shared
///    kernel launches, each query's match multiset, counts and
///    truncation flags are still identical to the unsharded engine's,
///    but the emission order within a query's vectors and the
///    launch-level DeviceStats legitimately differ: N shards means N
///    smaller fused launches with their own (deterministic) schedules
///    instead of one — that decomposition is the point of sharding.
///    The merged report's aggregates are the sum over the launches
///    that actually ran.
///  * Output is independent of the pool size: workers only fill
///    per-shard scratch reports; all merging happens on the driving
///    thread in shard-index order after a barrier.
///
/// Streaming (`BatchOptions::sink`) works under sharding: each shard
/// streams through a FanInSink::Lane (result_fanin.hpp) that remaps the
/// shard-local QueryIds to public ids and serializes delivery.
/// Per-query emission order is preserved; cross-shard interleaving is
/// scheduling-dependent.
///
/// Async front door: `SubmitBatch` enqueues a batch on a *bounded*
/// ingest queue and returns a `std::future<BatchReport>`; a dedicated
/// dispatcher thread processes queued batches strictly in submission
/// order (the graph evolves, so batches cannot be reordered).  When the
/// queue is full, SubmitBatch blocks — back-pressure is explicit — and
/// `TrySubmitBatch` refuses instead, for callers that would rather shed
/// load.  Mixing SubmitBatch with direct ProcessBatch/AddQuery/
/// RemoveQuery calls requires external synchronization: drain pending
/// futures first (the engine itself is not a concurrency barrier for
/// its mutating API, same as every other Engine).
///
/// Construction: directly, or through the registry's structured spec
/// grammar — `MakeEngine("sharded(gamma, shards=8)", g)` builds 8
/// gamma shards (the legacy `"sharded:gamma\@8"` sugar still parses to
/// the same tree); the shard count defaults to
/// ShardedEngine::kDefaultShards when `shards=` is omitted.  The inner
/// spec is arbitrary — option overrides and nested wrappers compose,
/// e.g. `sharded(gamma(result_cap=100000), shards=4, threads=2)`.
/// Inline keys `threads=` / `queue=` (or EngineOptions::serve_threads /
/// serve_queue_capacity) tune the pool and the ingest bound.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "serve/result_fanin.hpp"
#include "serve/thread_pool.hpp"

namespace bdsm::persist {
class Checkpointer;
}

namespace bdsm::serve {

class ShardedEngine final : public Engine {
 public:
  /// Shard count used when a sharded spec omits `shards=N`.
  static constexpr size_t kDefaultShards = 4;

  /// Builds `num_shards` instances of the inner engine spec, all over
  /// the same initial graph.  `inner` may be any registry spec tree
  /// (option overrides and nested wrappers included).  `options`
  /// configures the inner engines and, via serve_threads /
  /// serve_queue_capacity, this layer.  Throws EngineSpecError when
  /// the inner spec does not resolve.
  ShardedEngine(const EngineSpec& inner, size_t num_shards,
                const LabeledGraph& g, const EngineOptions& options = {});
  /// Convenience: parses `inner` ("gamma", "gamma(result_cap=5)", ...).
  ShardedEngine(const std::string& inner, size_t num_shards,
                const LabeledGraph& g, const EngineOptions& options = {});
  /// Drains the ingest queue (every accepted batch is processed and its
  /// future fulfilled), then stops the dispatcher and the pool.
  ~ShardedEngine() override;

  /// The canonical spec, e.g. "sharded(gamma, shards=4)".
  const char* Name() const override { return name_.c_str(); }

  /// Capabilities: the inner engine's clock (modeled device stays
  /// modeled; CPU inner engines switch to the critical-path clock,
  /// since phases run shard-concurrently), this layer's shard count,
  /// and the inner engine's canonical spec.
  EngineInfo Describe() const override;

  /// Assigns the query to a shard round-robin by public id — a
  /// deterministic placement, so a given add/remove sequence always
  /// produces the same sharding.
  QueryId AddQuery(const QueryGraph& q) override;
  bool RemoveQuery(QueryId id) override;
  std::vector<QueryId> QueryIds() const override;

  /// Snapshot capture/restore (persist/): the public query set is the
  /// unit of persistence — shard placement is a pure function of the
  /// public id (round-robin), so restoring queries under their original
  /// ids reproduces the exact sharding.
  std::vector<RegisteredQuery> RegisteredQueries() const override;
  bool RestoreQuery(const QueryGraph& q, QueryId id) override;

  /// All shard replicas are identical; this returns shard 0's.
  const LabeledGraph& host_graph() const override {
    return shards_.front().engine->host_graph();
  }

  size_t NumShards() const { return shards_.size(); }

  // -------------------------------------------------- serving stats
  // The repo's measurement convention (README, docs/BENCHMARKS.md):
  // on a host with fewer cores than shards, measured wall-clock cannot
  // show the concurrency, so the engine also tracks the *critical
  // path* — each phase is a barrier costing max-over-shards, so the
  // accumulated critical path is the wall-clock a host with
  // >= NumShards() free cores achieves.  Shard costs are measured in
  // thread-CPU seconds (util/timer.hpp ThreadCpuSeconds), which stay
  // truthful when worker threads outnumber cores.

  /// Cumulative per-shard thread-CPU seconds across all processed
  /// batches (the shard worker's own compute; inner engines that spawn
  /// helper threads are charged only for work done on the worker).
  const std::vector<double>& ShardBusySeconds() const {
    return shard_busy_seconds_;
  }
  /// Cumulative critical-path seconds: sum over every processed
  /// phase of the slowest shard's time in that phase.
  double CriticalPathSeconds() const { return critical_path_seconds_; }
  void ResetServingStats();
  /// Shard index owning a live public query id (kInvalidShard if the
  /// id is unknown).
  static constexpr size_t kInvalidShard = static_cast<size_t>(-1);
  size_t ShardOf(QueryId id) const;

  // ------------------------------------------------- async front door

  /// Enqueues one batch; the returned future resolves to the same
  /// BatchReport a direct ProcessBatch call would produce.  Blocks
  /// while the ingest queue is at capacity (explicit back-pressure).
  /// The sink in `options`, if any, must outlive the future's
  /// resolution.
  std::future<BatchReport> SubmitBatch(UpdateBatch batch,
                                       BatchOptions options = {});

  /// Non-blocking SubmitBatch: returns nullopt instead of waiting when
  /// the queue is full (load shedding).
  std::optional<std::future<BatchReport>> TrySubmitBatch(
      UpdateBatch batch, BatchOptions options = {});

  /// Batches accepted but not yet picked up by the dispatcher (an
  /// in-flight batch no longer counts).
  size_t PendingBatches() const;
  size_t QueueCapacity() const { return queue_capacity_; }

  // ----------------------------------------------- persistence hook

  /// Plugs a Checkpointer into the serving loop: after every fully
  /// applied batch (all shard replicas advanced — the per-batch
  /// barrier), the engine tees the batch into the checkpoint's WAL and
  /// lets the checkpoint policy decide whether to snapshot.  All shard
  /// replicas are identical at the barrier, so one coordinated snapshot
  /// of the public state (graph + public query set) covers every shard
  /// and lands in one manifest.  Covers every drive path (direct
  /// ProcessBatch, StreamPipeline, SubmitBatch).  The checkpointer must
  /// outlive the engine or be detached (nullptr) first; the caller must
  /// have Begin()-started it against this engine.  Do not also tee the
  /// same batches at the driver layer (ScenarioRunner's checkpointer
  /// hook) — that would record them twice.
  void AttachCheckpointer(persist::Checkpointer* checkpointer) {
    checkpointer_ = checkpointer;
  }

  /// True once a batch failed mid-flight on any drive path (direct
  /// ProcessBatch, StreamPipeline, or SubmitBatch).  A failure may
  /// leave the batch applied to some shard replicas and not others, so
  /// the engine poisons itself: every later batch — pending futures
  /// and direct calls alike — fails with the poison error instead of
  /// merging silently inconsistent results.  Rebuild the engine to
  /// recover.
  bool Poisoned() const { return poisoned_.load(std::memory_order_relaxed); }

 protected:
  // Engine phase fan-out: each phase runs on every shard concurrently,
  // then the per-shard scratch reports are merged in shard-index order.
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& options,
                     BatchReport* report) override;
  void RunUpdatePhase(const UpdateBatch& batch, const BatchOptions& options,
                      BatchReport* report) override;

 private:
  struct Shard {
    std::unique_ptr<Engine> engine;
    /// Accumulates this shard's phases of the current batch.
    BatchReport scratch;
    /// This shard's entry into the streaming fan-in.
    std::unique_ptr<FanInSink::Lane> lane;
    /// Shard-local QueryId -> public QueryId (drives the lane remap).
    std::unordered_map<QueryId, QueryId> to_public;
  };
  /// One registered query, in registration order.
  struct SlotRef {
    QueryId public_id;
    size_t shard;
    QueryId inner_id;
  };
  struct PendingBatch {
    UpdateBatch batch;
    BatchOptions options;
    std::promise<BatchReport> promise;
    /// Ingest observability (BatchReport::queue_wait_seconds /
    /// queue_depth): when the batch entered the queue, and how many
    /// accepted batches sat ahead of it.  Host wall time is honest
    /// here — the queue wait is real dispatcher lag, not a modeled
    /// parallelism claim.
    std::chrono::steady_clock::time_point enqueued;
    size_t depth_at_submit = 0;
  };

  /// Resets per-shard scratch and points the fan-in at this batch's
  /// sink; called when the first phase of a batch starts.
  void BeginBatch(const BatchOptions& options);
  /// Runs one phase body on every shard via the pool, streaming through
  /// the shard's lane, then merges scratch into `report`.  Returns the
  /// phase's critical path (the slowest shard's thread-CPU seconds).
  /// `phase_name` tags the per-shard observability spans
  /// (docs/OBSERVABILITY.md): "match-", "update" or "match+".
  double ForEachShard(const BatchOptions& options, const char* phase_name,
                      const std::function<void(Shard&, const BatchOptions&)>&
                          phase_body);
  /// Copies per-query state from shard scratch into the public report
  /// (slots in registration order) and rebuilds the aggregates.
  void MergeIntoReport(const BatchOptions& options, BatchReport* report);
  void DispatchLoop();

  std::string name_;
  std::vector<Shard> shards_;
  std::vector<SlotRef> slots_;
  QueryId next_id_ = 0;

  std::vector<double> shard_busy_seconds_;
  double critical_path_seconds_ = 0.0;
  /// Critical-path span cursor for per-shard phase spans: advances by
  /// each phase's slowest shard, so shard spans tile the same timeline
  /// the engine-level critical-path spans do (obs layer; only advanced
  /// while tracing is enabled).
  double obs_shard_cursor_ = 0.0;

  FanInSink fanin_;
  ThreadPool pool_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_ready_;  ///< batch available / stopping
  std::condition_variable queue_space_;  ///< below capacity again
  std::deque<PendingBatch> queue_;
  size_t queue_capacity_;
  bool stopping_ = false;
  std::atomic<bool> poisoned_{false};
  persist::Checkpointer* checkpointer_ = nullptr;
  std::thread dispatcher_;
};

/// Hook called by the EngineRegistry constructor so the "sharded"
/// serving wrapper is always available, whichever translation unit
/// first touches the registry.  (Self-registration from a static
/// initializer would be dead-stripped out of the static library when
/// no serve/ symbol is referenced directly.)
void RegisterServeEngines(EngineRegistry* registry);

}  // namespace bdsm::serve
